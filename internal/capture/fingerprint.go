package capture

import (
	"fmt"

	"offramps/internal/sim"
)

// Mode selects how a capture session materializes what the tracker
// exports. ModeFull keeps every transaction in Recording.Transactions —
// the paper's CSV trace, required for offline replay and reconstruction.
// ModeFingerprint streams each transaction into the bound detectors and
// a rolling Fingerprint only, never growing the trace: allocations stay
// O(1) in window count, which is what lets a wide campaign scale with
// scenario count instead of print length.
type Mode int

const (
	// ModeFull records the complete transaction trace (default).
	ModeFull Mode = iota
	// ModeFingerprint keeps only the rolling fingerprint; the trace is
	// never materialized.
	ModeFingerprint
)

// String names the mode for logs and JSON.
func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeFingerprint:
		return "fingerprint"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// FNV-1a 64-bit parameters; the digest is a running FNV-1a over the
// 16-byte wire frame of every exported transaction, so two captures have
// equal digests exactly when they exported identical frame sequences.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// AxisSummary condenses one axis of a capture into window statistics:
// the final counter value, its observed range, and the total absolute
// per-window movement. Together with the digest these are the compact
// per-axis embeddings the similarity-detection roadmap item matches
// against a fingerprint library.
type AxisSummary struct {
	Final         int64 `json:"final"`
	Min           int64 `json:"min"`
	Max           int64 `json:"max"`
	TotalAbsDelta int64 `json:"totalAbsDelta"`
}

// Fingerprint is a fixed-size, content-hashable summary of a capture:
// the window count and cadence, a running FNV-1a-64 digest over every
// exported frame, and per-axis window summaries. It is updated in place
// by Add with zero allocations, making it the O(1) stand-in for a full
// Recording in fingerprint-mode runs. Axes are indexed X, Y, Z, E.
type Fingerprint struct {
	Windows   int            `json:"windows"`
	Period    sim.Time       `json:"period"`
	StartedAt sim.Time       `json:"startedAt"`
	Digest    uint64         `json:"digest"`
	Axes      [4]AxisSummary `json:"axes"`

	// prev holds the previous window's counters for delta accounting.
	prev [4]int64
}

// Reset returns the fingerprint to its empty state, keeping Period.
func (fp *Fingerprint) Reset() {
	period := fp.Period
	*fp = Fingerprint{Period: period}
}

// Add folds one transaction into the fingerprint. It allocates nothing.
func (fp *Fingerprint) Add(t Transaction) {
	frame := t.Frame()
	h := fp.Digest
	if fp.Windows == 0 {
		h = fnvOffset64
	}
	for _, b := range frame {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	fp.Digest = h

	counts := [4]int64{int64(t.X), int64(t.Y), int64(t.Z), int64(t.E)}
	for i, c := range counts {
		s := &fp.Axes[i]
		if fp.Windows == 0 {
			s.Min, s.Max = c, c
		} else {
			if c < s.Min {
				s.Min = c
			}
			if c > s.Max {
				s.Max = c
			}
			d := c - fp.prev[i]
			if d < 0 {
				d = -d
			}
			s.TotalAbsDelta += d
		}
		s.Final = c
		fp.prev[i] = c
	}
	fp.Windows++
}

// Rehydrate restores the delta-accounting state a fingerprint loses
// across serialization (the previous window's counters are not part of
// the public summary). After the last Add the previous counters equal
// the per-axis Final values, so a rehydrated fingerprint is
// indistinguishable — including under reflect.DeepEqual — from the live
// fingerprint it was decoded from, and further Adds stay correct.
func (fp *Fingerprint) Rehydrate() {
	if fp.Windows == 0 {
		fp.prev = [4]int64{}
		return
	}
	for i := range fp.Axes {
		fp.prev[i] = fp.Axes[i].Final
	}
}

// Equal reports whether two fingerprints summarize identical captures.
func (fp *Fingerprint) Equal(other *Fingerprint) bool {
	if fp == nil || other == nil {
		return fp == other
	}
	return fp.Windows == other.Windows &&
		fp.Period == other.Period &&
		fp.StartedAt == other.StartedAt &&
		fp.Digest == other.Digest &&
		fp.Axes == other.Axes
}

// String renders a one-line summary.
func (fp *Fingerprint) String() string {
	return fmt.Sprintf("fingerprint{windows=%d digest=%016x final=[%d %d %d %d]}",
		fp.Windows, fp.Digest,
		fp.Axes[0].Final, fp.Axes[1].Final, fp.Axes[2].Final, fp.Axes[3].Final)
}

// FingerprintOf computes the fingerprint a fingerprint-mode capture of
// rec's transaction sequence would have produced — the differential
// anchor between modes.
func FingerprintOf(rec *Recording) Fingerprint {
	fp := Fingerprint{Period: rec.Period, StartedAt: rec.StartedAt}
	for _, t := range rec.Transactions {
		fp.Add(t)
	}
	return fp
}
