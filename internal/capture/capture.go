// Package capture defines the pulse-profile recording the OFFRAMPS FPGA
// exports while monitoring a print: one 16-byte transaction per 0.1 s
// window carrying the four axis step counters (paper §V-B "the UART
// control unit sends a 16-byte transaction containing step counts for all
// of the motors each 0.1 seconds").
//
// Recordings serialize to the CSV form shown in the paper's Figure 4:
//
//	Index, X, Y, Z, E
//	5113, 6060, 8266, 960, 52843
//	...
package capture

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"offramps/internal/sim"
)

// Transaction is one exported step-count snapshot. Counts are signed net
// step totals since homing (they are absolute positions in steps); after a
// normal homing they stay non-negative, but a trojan can drive them
// anywhere, so the format keeps the sign.
type Transaction struct {
	Index      uint32 // 0-based window number since capture start
	X, Y, Z, E int32
}

// Frame encodes the transaction payload as the FPGA's 16-byte UART frame:
// the four counters big-endian. (The index is implicit in arrival order on
// the wire; it is materialized when the frame is logged.)
func (t Transaction) Frame() [16]byte {
	var f [16]byte
	binary.BigEndian.PutUint32(f[0:4], uint32(t.X))
	binary.BigEndian.PutUint32(f[4:8], uint32(t.Y))
	binary.BigEndian.PutUint32(f[8:12], uint32(t.Z))
	binary.BigEndian.PutUint32(f[12:16], uint32(t.E))
	return f
}

// FromFrame decodes a 16-byte frame into a transaction with the given
// index.
func FromFrame(index uint32, f [16]byte) Transaction {
	return Transaction{
		Index: index,
		X:     int32(binary.BigEndian.Uint32(f[0:4])),
		Y:     int32(binary.BigEndian.Uint32(f[4:8])),
		Z:     int32(binary.BigEndian.Uint32(f[8:12])),
		E:     int32(binary.BigEndian.Uint32(f[12:16])),
	}
}

// Column returns the named counter value ("X", "Y", "Z", "E").
func (t Transaction) Column(name string) (int32, error) {
	switch name {
	case "X":
		return t.X, nil
	case "Y":
		return t.Y, nil
	case "Z":
		return t.Z, nil
	case "E":
		return t.E, nil
	default:
		return 0, fmt.Errorf("capture: unknown column %q", name)
	}
}

// Columns lists the counter column names in export order.
var Columns = []string{"X", "Y", "Z", "E"}

// Recording is a complete capture of one print.
//
// Period and StartedAt are populated by live capture but NOT by the CSV
// format — ReadCSV leaves both zero, since the paper's trace carries
// only the counter sequence. Code that needs wall-clock window timing
// must go through WindowTime, which rejects zero-period recordings
// explicitly; replay-style detectors that only consume the transaction
// sequence work on either kind.
type Recording struct {
	// Period is the export window length (0.1 s on the paper's hardware).
	// Zero for recordings parsed from CSV.
	Period sim.Time
	// StartedAt is the simulation time the first window opened (after
	// homing + first step edge, per the paper's synchronization rule).
	StartedAt sim.Time
	// Transactions in index order.
	Transactions []Transaction
}

// Len returns the number of transactions.
func (r *Recording) Len() int { return len(r.Transactions) }

// Final returns the last transaction and true, or false when empty. The
// detector's end-of-print 0 %-margin check runs against Final.
func (r *Recording) Final() (Transaction, bool) {
	if len(r.Transactions) == 0 {
		return Transaction{}, false
	}
	return r.Transactions[len(r.Transactions)-1], true
}

// WindowTime returns the simulated instant window i was exported. It
// errors — instead of returning a garbage zero-period extrapolation —
// when the recording carries no timing (Period zero, the ReadCSV case)
// or when i is out of range.
func (r *Recording) WindowTime(i int) (sim.Time, error) {
	if r.Period <= 0 {
		return 0, fmt.Errorf("capture: recording has no period (parsed from CSV?); window times unavailable")
	}
	if i < 0 || i >= len(r.Transactions) {
		return 0, fmt.Errorf("capture: window %d out of range [0,%d)", i, len(r.Transactions))
	}
	return r.StartedAt + sim.Time(i+1)*r.Period, nil
}

// Append adds a transaction, enforcing contiguous indices.
func (r *Recording) Append(t Transaction) error {
	if len(r.Transactions) > 0 {
		if want := r.Transactions[len(r.Transactions)-1].Index + 1; t.Index != want {
			return fmt.Errorf("capture: non-contiguous index %d, want %d", t.Index, want)
		}
	}
	r.Transactions = append(r.Transactions, t)
	return nil
}

// WriteCSV serializes the recording in the paper's format.
func (r *Recording) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "Index, X, Y, Z, E"); err != nil {
		return fmt.Errorf("capture: write header: %w", err)
	}
	for _, t := range r.Transactions {
		if _, err := fmt.Fprintf(bw, "%d, %d, %d, %d, %d\n", t.Index, t.X, t.Y, t.Z, t.E); err != nil {
			return fmt.Errorf("capture: write transaction %d: %w", t.Index, err)
		}
	}
	return bw.Flush()
}

// ReadCSV parses a recording from the paper's format. Period and
// StartedAt are not stored in the CSV and are left zero; comparisons only
// need the transaction sequence.
func ReadCSV(rd io.Reader) (*Recording, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	rec := &Recording{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 {
			if !strings.HasPrefix(strings.ToUpper(strings.ReplaceAll(text, " ", "")), "INDEX,X,Y,Z,E") {
				return nil, fmt.Errorf("capture: line 1: bad header %q", text)
			}
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 5 {
			return nil, fmt.Errorf("capture: line %d: want 5 fields, got %d", line, len(fields))
		}
		var vals [5]int64
		for i, f := range fields {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("capture: line %d field %d: %w", line, i, err)
			}
			vals[i] = v
		}
		if vals[0] < 0 || vals[0] > int64(^uint32(0)) {
			return nil, fmt.Errorf("capture: line %d: index %d out of range", line, vals[0])
		}
		t := Transaction{
			Index: uint32(vals[0]),
			X:     int32(vals[1]), Y: int32(vals[2]),
			Z: int32(vals[3]), E: int32(vals[4]),
		}
		if err := rec.Append(t); err != nil {
			return nil, fmt.Errorf("capture: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("capture: read: %w", err)
	}
	return rec, nil
}
