// Package registry provides the shared name→factory table behind the
// trojan and detector registries: registration panics on programmer
// error (the tables are assembled at init time), lookups are
// concurrency-safe, and spec-file parameters decode strictly.
package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Table is a named factory registry. The zero value is ready to use.
type Table[F any] struct {
	// Kind names the registered thing in panic messages ("trojan",
	// "detector").
	Kind string

	mu      sync.RWMutex
	entries map[string]F
}

// Register adds a named factory. Registering an empty name or a
// duplicate panics: the registry is assembled at init time and a
// collision is a programming error.
func (t *Table[F]) Register(name string, f F) {
	if name == "" {
		panic(t.Kind + ": Register with empty name")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.entries[name]; dup {
		panic(fmt.Sprintf("%s: %q registered twice", t.Kind, name))
	}
	if t.entries == nil {
		t.entries = make(map[string]F)
	}
	t.entries[name] = f
}

// Lookup returns the named factory.
func (t *Table[F]) Lookup(name string) (F, error) {
	t.mu.RLock()
	f, ok := t.entries[name]
	t.mu.RUnlock()
	if !ok {
		return f, fmt.Errorf("unknown %s %q (known: %v)", t.Kind, name, t.Names())
	}
	return f, nil
}

// Has reports whether name is registered.
func (t *Table[F]) Has(name string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.entries[name]
	return ok
}

// Names lists the registered names, sorted.
func (t *Table[F]) Names() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	names := make([]string, 0, len(t.entries))
	for n := range t.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// UnmarshalParams overlays spec-file JSON onto a defaults-prefilled
// params struct. nil, empty, and literal null all mean "keep defaults";
// unknown fields are rejected so a typo in a spec file fails loudly
// instead of silently running the default configuration.
func UnmarshalParams(params json.RawMessage, into any) error {
	if len(params) == 0 || bytes.Equal(bytes.TrimSpace(params), []byte("null")) {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(params))
	dec.DisallowUnknownFields()
	return dec.Decode(into)
}
