package registry

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableRegisterLookup(t *testing.T) {
	var tbl Table[int]
	tbl.Kind = "widget"
	tbl.Register("a", 1)
	tbl.Register("b", 2)
	if got, err := tbl.Lookup("a"); err != nil || got != 1 {
		t.Errorf("Lookup(a) = %d, %v", got, err)
	}
	if _, err := tbl.Lookup("nope"); err == nil || !strings.Contains(err.Error(), "widget") {
		t.Errorf("unknown lookup error = %v, want the kind named", err)
	}
	if !tbl.Has("b") || tbl.Has("c") {
		t.Error("Has() vocabulary wrong")
	}
	if names := tbl.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names() = %v", names)
	}
}

func TestTableRegisterPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	var tbl Table[int]
	tbl.Register("a", 1)
	expectPanic("duplicate registration", func() { tbl.Register("a", 2) })
	expectPanic("empty name", func() { tbl.Register("", 3) })
}

// decoderTarget mirrors the shape of real params structs: scalar fields
// of several types plus a nested member list, so the fuzzer exercises
// type mismatches and nesting against a realistic schema.
type decoderTarget struct {
	Margin      float64 `json:"margin,omitempty"`
	MinAbsolute int32   `json:"minAbsolute,omitempty"`
	Vote        string  `json:"vote,omitempty"`
	Members     []struct {
		Name   string          `json:"name"`
		Params json.RawMessage `json:"params,omitempty"`
	} `json:"members,omitempty"`
}

func TestUnmarshalParamsStrict(t *testing.T) {
	keepDefaults := [][]byte{nil, {}, []byte("null"), []byte(" null ")}
	for _, p := range keepDefaults {
		into := decoderTarget{Margin: 0.05}
		if err := UnmarshalParams(p, &into); err != nil {
			t.Errorf("UnmarshalParams(%q) = %v, want defaults kept", p, err)
		}
		if into.Margin != 0.05 {
			t.Errorf("UnmarshalParams(%q) clobbered defaults", p)
		}
	}
	bad := []string{
		`{"margni": 0.1}`,            // typo'd field
		`{"margin": "five percent"}`, // wrong type
		`{"minAbsolute": 1.5}`,       // non-integer
		`{"members": {"name": "x"}}`, // object where a list belongs
		`[1, 2, 3]`,                  // wrong top-level shape
		`{"margin": 0.1`,             // truncated
		`{"members":[{"name":1}]}`,   // nested wrong type
	}
	for _, p := range bad {
		var into decoderTarget
		if err := UnmarshalParams([]byte(p), &into); err == nil {
			t.Errorf("UnmarshalParams(%s) accepted", p)
		}
	}
	good := `{"margin": 0.1, "members": [{"name": "inner", "params": {"anything": true}}]}`
	var into decoderTarget
	if err := UnmarshalParams([]byte(good), &into); err != nil {
		t.Errorf("UnmarshalParams(%s) = %v", good, err)
	}
	if into.Margin != 0.1 || len(into.Members) != 1 {
		t.Errorf("decoded %+v", into)
	}
}

// FuzzUnmarshalParams hammers the strict spec-params decoder with
// arbitrary byte strings: it must always either decode or error, never
// panic, and must never accept input carrying an unknown field.
func FuzzUnmarshalParams(f *testing.F) {
	for _, seed := range []string{
		"", "null", "{}", `{"margin": 0.05}`, `{"margni": 0.05}`,
		`{"margin": "x"}`, `{"vote": "any", "members": [{"name": "golden-free"}]}`,
		`{"members": [{"name": "ensemble", "params": {"members": [{"name": "e"}]}}]}`,
		`[{}]`, `{"margin": 1e309}`, "{\"margin\":", `{"a":{"b":{"c":{"d":1}}}}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var into decoderTarget
		err := UnmarshalParams(json.RawMessage(data), &into)
		if err != nil {
			return
		}
		// Accepted input must re-encode: a decode that succeeded cannot
		// have left the target in an unmarshalable state.
		if _, merr := json.Marshal(into); merr != nil {
			t.Fatalf("accepted params %q but target does not re-marshal: %v", data, merr)
		}
	})
}
