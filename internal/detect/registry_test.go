package detect

import (
	"encoding/json"
	"reflect"
	"testing"

	"offramps/internal/capture"
)

func registryGolden() *capture.Recording {
	rec := &capture.Recording{}
	for i := 0; i < 5; i++ {
		_ = rec.Append(capture.Transaction{
			Index: uint32(i), X: int32(1000 * (i + 1)), Y: int32(500 * (i + 1)),
		})
	}
	return rec
}

func TestRegistryNames(t *testing.T) {
	want := []string{"attestation", "ensemble", "golden-comparator", "golden-free", "golden-monitor"}
	if got := RegisteredNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("RegisteredNames() = %v, want %v", got, want)
	}
}

func TestBuildGoldenDetectors(t *testing.T) {
	env := BuildEnv{Golden: registryGolden()}
	for _, name := range []string{"golden-comparator", "golden-monitor"} {
		d, err := Build(name, nil, env)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if d.Name() != name {
			t.Errorf("built detector names itself %q, want %q", d.Name(), name)
		}
		// Without a golden reference the build must fail, not defer the
		// error to stream time.
		if _, err := Build(name, nil, BuildEnv{}); err == nil {
			t.Errorf("%s built without a golden capture", name)
		}
	}
	// Params overlay the default config.
	d, err := Build("golden-comparator", json.RawMessage(`{"margin": 0.10}`), env)
	if err != nil {
		t.Fatal(err)
	}
	if g := d.(*Golden); g.cfg.Margin != 0.10 || g.cfg.MinAbsolute != DefaultConfig().MinAbsolute {
		t.Errorf("config overlay wrong: %+v", d.(*Golden).cfg)
	}
}

func TestBuildGoldenFreeAndEnsemble(t *testing.T) {
	d, err := Build("golden-free", json.RawMessage(`{"maxRetractSteps": 999}`), BuildEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if e := d.(*RuleEngine); e.limits.MaxRetractSteps != 999 {
		t.Errorf("limits overlay wrong: %+v", e.limits)
	}

	raw := json.RawMessage(`{
		"vote": "all",
		"members": [
			{"name": "golden-monitor"},
			{"name": "golden-free", "params": {"maxStationaryExtrude": 50}}
		]
	}`)
	d, err = Build("ensemble", raw, BuildEnv{Golden: registryGolden()})
	if err != nil {
		t.Fatal(err)
	}
	ens := d.(*Ensemble)
	if ens.Name() != "ensemble(all)" || len(ens.members) != 2 {
		t.Errorf("ensemble = %s with %d members", ens.Name(), len(ens.members))
	}

	for _, bad := range []string{
		`{"vote": "most", "members": [{"name": "golden-free"}]}`,
		`{"members": []}`,
		`{"members": [{"name": "nope"}]}`,
	} {
		if _, err := Build("ensemble", json.RawMessage(bad), BuildEnv{}); err == nil {
			t.Errorf("bad ensemble spec accepted: %s", bad)
		}
	}
}
