package detect

import (
	"strings"
	"testing"
	"testing/quick"

	"offramps/internal/capture"
)

// rec builds a recording from X counts; other axes scale deterministically.
func rec(xs ...int32) *capture.Recording {
	r := &capture.Recording{}
	for i, x := range xs {
		r.Append(capture.Transaction{
			Index: uint32(i), X: x, Y: x * 2, Z: 100, E: x / 2,
		})
	}
	return r
}

func TestCompareIdentical(t *testing.T) {
	g := rec(1000, 2000, 3000)
	rep, err := Compare(g, rec(1000, 2000, 3000), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrojanLikely || rep.NumMismatches != 0 || rep.LargestPercent != 0 {
		t.Errorf("identical captures flagged: %+v", rep)
	}
	if rep.NumCompared != 3 {
		t.Errorf("NumCompared = %d", rep.NumCompared)
	}
}

func TestCompareWithinMargin(t *testing.T) {
	g := rec(1000, 2000, 3000)
	// 4% off mid-print but identical at the end: inside the margin.
	s := rec(1040, 2080, 3000)
	rep, err := Compare(g, s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrojanLikely {
		t.Errorf("4%% drift flagged: %s", rep.Format())
	}
	if rep.LargestPercent < 3.9 || rep.LargestPercent > 4.1 {
		t.Errorf("LargestPercent = %v", rep.LargestPercent)
	}
}

func TestCompareBeyondMargin(t *testing.T) {
	g := rec(1000, 2000, 3000)
	s := rec(1000, 2400, 3000) // +20% in window 1
	rep, err := Compare(g, s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TrojanLikely {
		t.Error("20% divergence not flagged")
	}
	// X +20%, Y +20%, E +20% at index 1 = 3 mismatches.
	if rep.NumMismatches != 3 {
		t.Errorf("NumMismatches = %d, want 3: %s", rep.NumMismatches, rep.Format())
	}
	if rep.Mismatches[0].Index != 1 || rep.Mismatches[0].Column != "X" {
		t.Errorf("first mismatch = %+v", rep.Mismatches[0])
	}
}

func TestCompareFinalZeroMarginCatchesStealthy(t *testing.T) {
	// 2% reduction everywhere: inside the 5% margin per window, but the
	// final counts differ — the paper's stealthiest case (Table II #4).
	g := rec(1000, 2000, 3000)
	s := rec(980, 1960, 2940)
	rep, err := Compare(g, s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumMismatches != 0 {
		t.Errorf("2%% drift produced window mismatches: %s", rep.Format())
	}
	if len(rep.Final) == 0 || !rep.TrojanLikely {
		t.Errorf("final 0%%-margin check missed the stealthy trojan: %+v", rep)
	}
}

func TestCompareMinAbsoluteGuard(t *testing.T) {
	// Tiny counts right after capture start: 2 vs 4 steps is 100%
	// relative but only 2 steps absolute.
	g := rec(2, 1000, 2000)
	s := rec(4, 1000, 2000)
	cfg := DefaultConfig()
	rep, err := Compare(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Final X differs (2000 vs 2000? no — final is index 2, X equal).
	// Window 0 X differs by 2 ≤ MinAbsolute: guarded.
	if rep.NumMismatches != 0 {
		t.Errorf("sub-resolution diff flagged: %s", rep.Format())
	}
	// But LargestPercent still reports the raw divergence.
	if rep.LargestPercent != 100 {
		t.Errorf("LargestPercent = %v, want 100", rep.LargestPercent)
	}

	cfg.MinAbsolute = 0
	rep, err = Compare(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumMismatches == 0 {
		t.Error("MinAbsolute=0 should flag the 100% diff")
	}
}

func TestCompareZeroGolden(t *testing.T) {
	g := rec(0, 0)
	s := rec(500, 0)
	rep, err := Compare(g, s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TrojanLikely || rep.LargestPercent != 100 {
		t.Errorf("zero-golden divergence: %+v", rep)
	}
}

func TestCompareShorterSuspect(t *testing.T) {
	g := rec(100, 200, 300, 400)
	s := rec(100, 200)
	rep, err := Compare(g, s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumCompared != 2 || rep.LengthDelta != -2 {
		t.Errorf("compared=%d delta=%d", rep.NumCompared, rep.LengthDelta)
	}
	// Final counts: golden 400 vs suspect 200 — flagged.
	if !rep.TrojanLikely || len(rep.Final) == 0 {
		t.Errorf("truncated print not flagged: %+v", rep)
	}
}

func TestCompareEmptySuspect(t *testing.T) {
	g := rec(100)
	rep, err := Compare(g, &capture.Recording{}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TrojanLikely {
		t.Error("empty suspect capture not flagged")
	}
}

func TestCompareErrors(t *testing.T) {
	g := rec(1)
	if _, err := Compare(nil, g, DefaultConfig()); err == nil {
		t.Error("nil golden accepted")
	}
	if _, err := Compare(g, nil, DefaultConfig()); err == nil {
		t.Error("nil suspect accepted")
	}
	if _, err := Compare(&capture.Recording{}, g, DefaultConfig()); err == nil {
		t.Error("empty golden accepted")
	}
	bad := DefaultConfig()
	bad.Margin = 1.5
	if _, err := Compare(g, g, bad); err == nil {
		t.Error("margin 1.5 accepted")
	}
	bad = DefaultConfig()
	bad.MinAbsolute = -1
	if _, err := Compare(g, g, bad); err == nil {
		t.Error("negative MinAbsolute accepted")
	}
	bad = DefaultConfig()
	bad.MaxReported = -1
	if _, err := Compare(g, g, bad); err == nil {
		t.Error("negative MaxReported accepted")
	}
}

func TestReportFormatMatchesFigure4(t *testing.T) {
	g := rec(7218, 8166)
	s := rec(6489, 7437)
	rep, err := Compare(g, s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Format()
	for _, want := range []string{
		"Index: 0, Column: X, Values: 7218, 6489",
		"Largest percent difference found:",
		"Number of transactions compared: 2",
		"Number of mismatches:",
		"Trojan likely!",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

func TestReportFormatClean(t *testing.T) {
	g := rec(100, 200)
	rep, err := Compare(g, rec(100, 200), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Format(), "No Trojan suspected.") {
		t.Errorf("clean verdict missing:\n%s", rep.Format())
	}
}

func TestReportCapsDetailList(t *testing.T) {
	g := rec(make([]int32, 200)...)
	xs := make([]int32, 200)
	for i := range xs {
		xs[i] = 10_000 // everything diverges
	}
	s := rec(xs...)
	cfg := DefaultConfig()
	cfg.MaxReported = 10
	rep, err := Compare(g, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) != 10 {
		t.Errorf("detail list = %d, want capped 10", len(rep.Mismatches))
	}
	if rep.NumMismatches <= 10 {
		t.Errorf("NumMismatches = %d, want full count", rep.NumMismatches)
	}
	if !strings.Contains(rep.Format(), "further mismatches") {
		t.Error("Format() does not mention the cap")
	}
}

// Property: Compare is symmetric in its verdict for identical inputs and
// never reports a negative largest percent.
func TestComparePercentNonNegativeProperty(t *testing.T) {
	f := func(a, b []int16) bool {
		if len(a) == 0 {
			return true
		}
		ga := make([]int32, len(a))
		for i, v := range a {
			ga[i] = int32(v)
		}
		sb := make([]int32, 0, len(b))
		for _, v := range b {
			sb = append(sb, int32(v))
		}
		if len(sb) == 0 {
			sb = []int32{0}
		}
		rep, err := Compare(rec(ga...), rec(sb...), DefaultConfig())
		return err == nil && rep.LargestPercent >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentDiff(t *testing.T) {
	cases := []struct {
		g, s int32
		want float64
	}{
		{100, 100, 0},
		{100, 95, 5},
		{100, 200, 100},
		{0, 5, 100},
		{0, 0, 0},
		{-100, -95, 5},
	}
	for _, tc := range cases {
		if got := percentDiff(tc.g, tc.s); got != tc.want {
			t.Errorf("percentDiff(%d,%d) = %v, want %v", tc.g, tc.s, got, tc.want)
		}
	}
}
