package detect

import (
	"encoding/json"
	"fmt"

	"offramps/internal/capture"
	"offramps/internal/registry"
)

// BuildEnv carries the run-scoped references a detector factory may need
// but a spec file cannot embed. Today that is only the golden capture:
// golden-based detectors compare against a reference print resolved at
// suite-execution time (e.g. from another scenario's recording), not at
// spec-authoring time.
type BuildEnv struct {
	// Golden is the reference capture for golden-based detectors; nil for
	// reference-free strategies.
	Golden *capture.Recording
}

// Factory builds a fresh detector from serialized parameters. params is
// the spec file's raw JSON (nil or empty means defaults).
type Factory func(params json.RawMessage, env BuildEnv) (Detector, error)

var table = registry.Table[Factory]{Kind: "detector"}

// Register adds a named detector factory to the registry. Scenario specs
// reference detectors by these names. Registering a nil factory, an
// empty name, or a duplicate name panics: the registry is assembled at
// init time and a collision is a programming error.
func Register(name string, f Factory) {
	if f == nil {
		panic("detect: Register with nil factory")
	}
	table.Register(name, f)
}

// Build constructs a fresh detector by registry name.
func Build(name string, params json.RawMessage, env BuildEnv) (Detector, error) {
	f, err := table.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("detect: %w", err)
	}
	d, err := f(params, env)
	if err != nil {
		return nil, fmt.Errorf("detect: building %q: %w", name, err)
	}
	if d == nil {
		return nil, fmt.Errorf("detect: factory %q returned nil", name)
	}
	return d, nil
}

// Registered reports whether a detector name is known.
func Registered(name string) bool { return table.Has(name) }

// RegisteredNames lists the registered detector names, sorted.
func RegisteredNames() []string { return table.Names() }

// memberSpec is one ensemble member in a spec file.
type memberSpec struct {
	Name   string          `json:"name"`
	Params json.RawMessage `json:"params,omitempty"`
}

// ensembleParams is the ensemble's spec-file parameter shape.
type ensembleParams struct {
	Vote    string       `json:"vote,omitempty"` // "any" (default) or "all"
	Members []memberSpec `json:"members"`
}

// The built-in strategies register under the same names their reports
// carry, so a spec file reads like the tool output it produces.
func init() {
	goldenFactory := func(live bool) Factory {
		return func(p json.RawMessage, env BuildEnv) (Detector, error) {
			cfg := DefaultConfig()
			if err := registry.UnmarshalParams(p, &cfg); err != nil {
				return nil, err
			}
			if env.Golden == nil {
				return nil, fmt.Errorf("golden-based detector needs a golden capture (set the spec's \"golden\" reference)")
			}
			return newGolden(env.Golden, cfg, live)
		}
	}
	Register("golden-comparator", goldenFactory(false))
	Register("golden-monitor", goldenFactory(true))

	Register(goldenFreeName, func(p json.RawMessage, _ BuildEnv) (Detector, error) {
		limits := DefaultLimits()
		if err := registry.UnmarshalParams(p, &limits); err != nil {
			return nil, err
		}
		return NewRuleEngine(limits)
	})

	Register(attestationName, func(p json.RawMessage, _ BuildEnv) (Detector, error) {
		cfg := DefaultAttestationConfig()
		if err := registry.UnmarshalParams(p, &cfg); err != nil {
			return nil, err
		}
		return NewAttestation(cfg)
	})

	Register("ensemble", func(p json.RawMessage, env BuildEnv) (Detector, error) {
		var params ensembleParams
		if err := registry.UnmarshalParams(p, &params); err != nil {
			return nil, err
		}
		var vote Vote
		switch params.Vote {
		case "", "any":
			vote = VoteAny
		case "all":
			vote = VoteAll
		default:
			return nil, fmt.Errorf("unknown ensemble vote %q (want any or all)", params.Vote)
		}
		if len(params.Members) == 0 {
			return nil, fmt.Errorf("ensemble needs at least one member")
		}
		members := make([]Detector, 0, len(params.Members))
		for _, m := range params.Members {
			d, err := Build(m.Name, m.Params, env)
			if err != nil {
				return nil, err
			}
			members = append(members, d)
		}
		return NewEnsemble(vote, members...)
	})
}
