package detect

import (
	"errors"
	"fmt"

	"offramps/internal/capture"
)

// Vote is an Ensemble's combination rule.
type Vote int

const (
	// VoteAny trips (and flags) when ANY member does — highest recall,
	// the union of every member's coverage.
	VoteAny Vote = iota
	// VoteAll trips (and flags) only when ALL members do — highest
	// precision, used to suppress single-detector false positives.
	VoteAll
)

// String names the rule.
func (v Vote) String() string {
	switch v {
	case VoteAny:
		return "any"
	case VoteAll:
		return "all"
	default:
		return fmt.Sprintf("Vote(%d)", int(v))
	}
}

// Ensemble combines several detectors into one: every observation is fed
// to every member and the verdicts are merged under the voting rule. It
// lets a run pair the golden monitor's reference-based precision with the
// rule engine's reference-free physics coverage behind a single Detector.
type Ensemble struct {
	vote    Vote
	members []Detector

	tripped   bool
	trip      *Mismatch
	violation *Violation
}

// NewEnsemble builds an ensemble over one or more member detectors.
func NewEnsemble(vote Vote, members ...Detector) (*Ensemble, error) {
	if vote != VoteAny && vote != VoteAll {
		return nil, fmt.Errorf("detect: unknown vote rule %v", vote)
	}
	if len(members) == 0 {
		return nil, errors.New("detect: ensemble needs at least one member")
	}
	return &Ensemble{vote: vote, members: members}, nil
}

// Name identifies the ensemble and its rule in reports.
func (e *Ensemble) Name() string { return fmt.Sprintf("ensemble(%s)", e.vote) }

// Observe feeds the transaction to every member and merges the verdicts.
// Member verdicts latch individually, so a VoteAll ensemble trips once
// every member has tripped at some point in the stream.
func (e *Ensemble) Observe(tx capture.Transaction) Verdict {
	trippedMembers := 0
	var streamErr error
	for _, d := range e.members {
		v := d.Observe(tx)
		if v.Err != nil && streamErr == nil {
			streamErr = fmt.Errorf("%s: %w", d.Name(), v.Err)
		}
		if v.Tripped {
			trippedMembers++
			if e.trip == nil {
				e.trip = v.Trip
			}
			if e.violation == nil {
				e.violation = v.Violation
			}
		}
	}
	switch e.vote {
	case VoteAll:
		if trippedMembers == len(e.members) {
			e.tripped = true
		}
	default:
		if trippedMembers > 0 {
			e.tripped = true
		}
	}
	v := Verdict{Err: streamErr}
	if e.tripped {
		v.Tripped = true
		v.Trip = e.trip
		v.Violation = e.violation
	}
	return v
}

// Finalize finalizes every member and merges the reports: the member
// reports ride along under Sub, the verdict follows the voting rule, and
// the scalar fields aggregate across members for at-a-glance summaries.
func (e *Ensemble) Finalize() *Report {
	r := &Report{Detector: e.Name(), Tripped: e.tripped}
	if e.tripped {
		r.Trip = e.trip
	}
	likely := 0
	for _, d := range e.members {
		sub := d.Finalize()
		r.Sub = append(r.Sub, sub)
		if sub.TrojanLikely {
			likely++
		}
		r.NumMismatches += sub.NumMismatches
		if sub.NumCompared > r.NumCompared {
			r.NumCompared = sub.NumCompared
		}
		if sub.LargestPercent > r.LargestPercent {
			r.LargestPercent = sub.LargestPercent
		}
		if sub.LargestSubstantial > r.LargestSubstantial {
			r.LargestSubstantial = sub.LargestSubstantial
		}
	}
	switch e.vote {
	case VoteAll:
		r.TrojanLikely = likely == len(e.members)
	default:
		r.TrojanLikely = likely > 0
	}
	return r
}
