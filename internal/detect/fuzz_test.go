package detect

import (
	"encoding/json"
	"testing"

	"offramps/internal/capture"
)

// FuzzBuildDetectorParams drives every registered detector factory with
// arbitrary params bytes: Build must return a detector or an error —
// never panic — including recursive ensemble specs, whose members are
// themselves registry builds. This is the spec-file attack surface: a
// suite file's "params" blob reaches these decoders verbatim.
func FuzzBuildDetectorParams(f *testing.F) {
	for _, seed := range []string{
		"", "null", "{}",
		`{"margin": 0.05}`,
		`{"margin": -5}`,
		`{"margni": 0.05}`,
		`{"vote": "any", "members": [{"name": "golden-free"}]}`,
		`{"vote": "quorum", "members": [{"name": "golden-free"}]}`,
		`{"members": []}`,
		`{"members": [{"name": "no-such-detector"}]}`,
		`{"members": [{"name": "ensemble", "params": {"members": [{"name": "ensemble", "params": {"members": [{"name": "attestation"}]}}]}}]}`,
		`{"members": [{"name": "golden-monitor", "params": {"margin": "wide"}}]}`,
		`{"maxTravel": 1e309}`,
	} {
		f.Add([]byte(seed))
	}
	golden := &capture.Recording{Transactions: []capture.Transaction{{X: 1}}}
	names := RegisteredNames()
	f.Fuzz(func(t *testing.T, params []byte) {
		for _, name := range names {
			d, err := Build(name, json.RawMessage(params), BuildEnv{Golden: golden})
			if err != nil {
				continue
			}
			if d == nil {
				t.Fatalf("Build(%s, %q) returned nil detector and nil error", name, params)
			}
			if d.Name() == "" {
				t.Fatalf("Build(%s, %q) returned a nameless detector", name, params)
			}
		}
	})
}

// TestNestedEnsembleSpecErrors pins the decoder behaviour the fuzzer
// probes: malformed nested ensemble specs error cleanly at build time.
func TestNestedEnsembleSpecErrors(t *testing.T) {
	env := BuildEnv{Golden: &capture.Recording{Transactions: []capture.Transaction{{X: 1}}}}
	bad := []string{
		`{"members": [{"name": "ensemble"}]}`,                                                                   // inner ensemble with no members
		`{"members": [{"name": "ensemble", "params": {"members": [{"nmae": "x"}]}}]}`,                           // typo inside the nesting
		`{"members": [{"name": "ensemble", "params": {"members": [{"name": 42}]}}]}`,                            // wrong type deep down
		`{"members": [{"name": "ensemble", "params": {"vote": "most", "members": [{"name": "golden-free"}]}}]}`, // bad nested vote
	}
	for _, p := range bad {
		if _, err := Build("ensemble", json.RawMessage(p), env); err == nil {
			t.Errorf("Build(ensemble, %s) accepted", p)
		}
	}
	// A well-formed two-deep nesting builds.
	good := `{"vote": "all", "members": [{"name": "golden-free"}, {"name": "ensemble", "params": {"members": [{"name": "golden-monitor"}]}}]}`
	d, err := Build("ensemble", json.RawMessage(good), env)
	if err != nil {
		t.Fatalf("nested ensemble rejected: %v", err)
	}
	if d.Name() != "ensemble(all)" {
		t.Errorf("Name() = %q", d.Name())
	}
}
