package detect

import (
	"fmt"

	"offramps/internal/capture"
)

// Golden is the golden-capture detector: the shared streaming core behind
// both the batch comparator and the live monitor. Transactions are checked
// window by window against a known-good capture of the same job; the
// end-of-stream Finalize runs the paper's 0 %-margin final-count check.
//
// The two constructors differ only in stream semantics:
//
//   - NewComparator builds the batch form used by Compare: it never trips
//     mid-stream, aligns positionally, and judges windows beyond the
//     golden capture's end via the final check and the length delta.
//   - NewMonitor builds the live form: it trips on the first out-of-margin
//     window — "enabling a user to halt a print as soon as a Trojan is
//     suspected" (paper §V-C) — enforces index discipline, and compares
//     trailing windows against the golden final counts (the machine
//     should be holding still by then).
type Golden struct {
	golden *capture.Recording
	cfg    Config
	live   bool

	pos                int // next stream position expected
	compared           int // windows actually compared against a reference
	mismatches         []Mismatch
	numMismatches      int
	largest            float64
	largestSubstantial float64
	tripped            bool
	trip               *Mismatch
	last               capture.Transaction
	seen               bool
}

func newGolden(golden *capture.Recording, cfg Config, live bool) (*Golden, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if golden == nil || golden.Len() == 0 {
		return nil, fmt.Errorf("detect: golden detector needs a non-empty golden capture")
	}
	return &Golden{golden: golden, cfg: cfg, live: live}, nil
}

// NewComparator builds the batch golden detector.
func NewComparator(golden *capture.Recording, cfg Config) (*Golden, error) {
	return newGolden(golden, cfg, false)
}

// NewMonitor builds the live golden detector.
func NewMonitor(golden *capture.Recording, cfg Config) (*Golden, error) {
	return newGolden(golden, cfg, true)
}

// Name identifies the detector form in reports.
func (g *Golden) Name() string {
	if g.live {
		return "golden-monitor"
	}
	return "golden-comparator"
}

// Observe checks one transaction against the golden capture. In live mode
// transactions must arrive in index order, aligned with the golden
// capture's window clock. The verdict latches after a trip, but the
// detector keeps consuming the stream so a FlagOnly run's Finalize still
// sees the true final counts and the full mismatch tally.
func (g *Golden) Observe(tx capture.Transaction) Verdict {
	if g.live && int(tx.Index) != g.pos {
		v := g.verdict()
		v.Err = fmt.Errorf("detect: monitor expected index %d, got %d", g.pos, tx.Index)
		return v
	}
	pos := g.pos
	g.pos++
	g.last, g.seen = tx, true

	var ref capture.Transaction
	switch {
	case pos < g.golden.Len():
		ref = g.golden.Transactions[pos]
	case g.live:
		// Past the golden capture's end the machine should hold still at
		// the golden final counts; motion out there is itself suspicious.
		ref, _ = g.golden.Final()
	default:
		// Batch semantics: trailing windows are judged by the final-count
		// check and the length delta, not per-window.
		return g.verdict()
	}
	g.compared++

	idx := ref.Index
	if g.live {
		idx = tx.Index
	}
	for _, col := range capture.Columns {
		gv, _ := ref.Column(col)
		sv, _ := tx.Column(col)
		pd := percentDiff(gv, sv)
		if pd > g.largest {
			g.largest = pd
		}
		if (gv >= SubstantialCount || gv <= -SubstantialCount) && pd > g.largestSubstantial {
			g.largestSubstantial = pd
		}
		absDiff := int64(gv) - int64(sv)
		if absDiff < 0 {
			absDiff = -absDiff
		}
		if pd > g.cfg.Margin*100 && absDiff > int64(g.cfg.MinAbsolute) {
			g.numMismatches++
			m := Mismatch{Index: idx, Column: col, Golden: gv, Suspect: sv}
			if len(g.mismatches) < g.cfg.MaxReported {
				g.mismatches = append(g.mismatches, m)
			}
			if g.live && !g.tripped {
				g.tripped = true
				g.trip = &m
			}
		}
	}
	return g.verdict()
}

func (g *Golden) verdict() Verdict {
	return Verdict{Tripped: g.tripped, Trip: g.trip}
}

// Tripped reports whether the live detector has flagged the print.
func (g *Golden) Tripped() bool { return g.tripped }

// TripMismatch returns the first out-of-margin observation, or nil.
func (g *Golden) TripMismatch() *Mismatch { return g.trip }

// Observed reports how many transactions have been consumed.
func (g *Golden) Observed() int { return g.pos }

// LargestPercent reports the worst divergence seen so far, including
// differences below the MinAbsolute guard.
func (g *Golden) LargestPercent() float64 { return g.largest }

// Finalize runs the end-of-print 0 %-margin check — "ensuring that the
// correct number of steps was counted on each axis at the conclusion of
// the print" — against the last observed transaction and assembles the
// report.
func (g *Golden) Finalize() *Report {
	r := &Report{
		Detector:           g.Name(),
		Mismatches:         append([]Mismatch(nil), g.mismatches...),
		NumMismatches:      g.numMismatches,
		NumCompared:        g.compared,
		LargestPercent:     g.largest,
		LargestSubstantial: g.largestSubstantial,
		LengthDelta:        g.pos - g.golden.Len(),
		Tripped:            g.tripped,
		Trip:               g.trip,
	}
	if !g.seen {
		// Nothing arrived at all: an empty suspect stream is a divergence
		// in itself.
		r.TrojanLikely = true
		return r
	}
	gFinal, _ := g.golden.Final()
	for _, col := range capture.Columns {
		gv, _ := gFinal.Column(col)
		sv, _ := g.last.Column(col)
		if gv != sv {
			r.Final = append(r.Final, FinalMismatch{Column: col, Golden: gv, Suspect: sv})
		}
	}
	r.TrojanLikely = g.tripped || r.NumMismatches > 0 || len(r.Final) > 0
	return r
}
