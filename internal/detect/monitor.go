package detect

import (
	"fmt"

	"offramps/internal/capture"
)

// Monitor is the streaming form of the detector: transactions are checked
// against the golden capture as they arrive, so a print can be halted the
// moment interference is suspected — "enabling a user to halt a print as
// soon as a Trojan is suspected" (paper §V-C). Large malicious divergences
// are caught early, "sav[ing] machine time and material cost" (§V-A).
type Monitor struct {
	golden *capture.Recording
	cfg    Config

	next       int // next golden index expected
	mismatches int
	largest    float64
	tripped    bool
	tripInfo   *Mismatch
}

// NewMonitor builds a streaming detector against a golden capture.
func NewMonitor(golden *capture.Recording, cfg Config) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if golden == nil || golden.Len() == 0 {
		return nil, fmt.Errorf("detect: monitor needs a non-empty golden capture")
	}
	return &Monitor{golden: golden, cfg: cfg}, nil
}

// Observe checks one live transaction. It returns true when the monitor
// has tripped (on this transaction or earlier). Transactions must arrive
// in index order, aligned with the golden capture's window clock.
//
// A live print that runs longer than the golden capture is itself
// suspicious only at the final check, which the caller performs with
// Finish; extra trailing windows are compared against the golden's final
// transaction (the machine should be holding still by then).
func (m *Monitor) Observe(tx capture.Transaction) (bool, error) {
	if m.tripped {
		return true, nil
	}
	want := m.next
	if int(tx.Index) != want {
		return false, fmt.Errorf("detect: monitor expected index %d, got %d", want, tx.Index)
	}
	m.next++

	var ref capture.Transaction
	if want < m.golden.Len() {
		ref = m.golden.Transactions[want]
	} else {
		ref, _ = m.golden.Final()
	}
	for _, col := range capture.Columns {
		gv, err := ref.Column(col)
		if err != nil {
			return false, err
		}
		sv, err := tx.Column(col)
		if err != nil {
			return false, err
		}
		pd := percentDiff(gv, sv)
		if pd > m.largest {
			m.largest = pd
		}
		absDiff := int64(gv) - int64(sv)
		if absDiff < 0 {
			absDiff = -absDiff
		}
		if pd > m.cfg.Margin*100 && absDiff > int64(m.cfg.MinAbsolute) {
			m.mismatches++
			if !m.tripped {
				m.tripped = true
				m.tripInfo = &Mismatch{Index: tx.Index, Column: col, Golden: gv, Suspect: sv}
			}
		}
	}
	return m.tripped, nil
}

// Tripped reports whether the monitor has flagged the print.
func (m *Monitor) Tripped() bool { return m.tripped }

// TripMismatch returns the first out-of-margin observation, or nil.
func (m *Monitor) TripMismatch() *Mismatch { return m.tripInfo }

// Observed reports how many transactions have been checked.
func (m *Monitor) Observed() int { return m.next }

// LargestPercent reports the worst divergence seen so far.
func (m *Monitor) LargestPercent() float64 { return m.largest }

// Finish performs the end-of-print 0 %-margin check against the golden
// final counts and returns the overall verdict.
func (m *Monitor) Finish(final capture.Transaction) (trojanLikely bool, finals []FinalMismatch) {
	gFinal, _ := m.golden.Final()
	for _, col := range capture.Columns {
		gv, _ := gFinal.Column(col)
		sv, _ := final.Column(col)
		if gv != sv {
			finals = append(finals, FinalMismatch{Column: col, Golden: gv, Suspect: sv})
		}
	}
	return m.tripped || len(finals) > 0, finals
}
