package detect

import (
	"fmt"
	"strings"

	"offramps/internal/capture"
)

// The paper's detection strategy needs a golden capture of the exact same
// job. Its discussion proposes "new golden-free methods for detection"
// (§VI) as future work: plausibility rules that need no reference print
// because they encode what *any* healthy print looks like. This file
// implements that extension as a rule engine over captures.
//
// Golden-free rules cannot catch a trojan that produces a *different but
// physically plausible* part (that fundamentally needs a reference), but
// they catch the large class of attacks that violate machine physics or
// printing invariants: counts outside the build volume, impossible step
// rates, filament regression beyond any sane retraction, and sustained
// stationary extrusion (material dumped in place — the relocation
// trojan's signature blob).

// Limits describes the victim machine's physical envelope — knowable
// without any golden print, straight from the printer's spec sheet.
type Limits struct {
	// Build volume in steps (MIN endstop = 0).
	MaxXSteps, MaxYSteps, MaxZSteps int32
	// MinSteps tolerates slight sub-zero counts from homing overshoot.
	MinSteps int32
	// MaxStepsPerWindow caps per-window axis movement: max feedrate ×
	// window length × steps/mm.
	MaxStepsPerWindow int32
	// MaxRetractSteps bounds how far E may ever run backwards from its
	// high-water mark (firmware retraction plus a safety factor).
	MaxRetractSteps int32
	// MaxStationaryExtrude bounds filament extruded (steps) across
	// consecutive windows with no XY motion — un-retracts are short;
	// sustained in-place extrusion is a blob.
	MaxStationaryExtrude int32
}

// DefaultLimits matches the simulated Prusa-on-RAMPS (250×210×210 mm at
// 80/80/400 steps-per-mm, 200 mm/s max, 0.1 s windows, 0.8 mm retract at
// 96 steps/mm).
func DefaultLimits() Limits {
	return Limits{
		MaxXSteps:            250 * 80,
		MaxYSteps:            210 * 80,
		MaxZSteps:            210 * 400,
		MinSteps:             -80,  // 1 mm of homing slack
		MaxStepsPerWindow:    1920, // 200 mm/s × 0.1 s × 80 st/mm × 1.2 headroom
		MaxRetractSteps:      231,  // 3 × 0.8 mm retracts at 96 st/mm, stacked
		MaxStationaryExtrude: 144,  // 1.5 mm of filament in place at 96 st/mm
	}
}

// Validate reports the first invalid field, or nil.
func (l Limits) Validate() error {
	if l.MaxXSteps <= 0 || l.MaxYSteps <= 0 || l.MaxZSteps <= 0 {
		return fmt.Errorf("detect: build volume limits must be positive")
	}
	if l.MaxStepsPerWindow <= 0 {
		return fmt.Errorf("detect: MaxStepsPerWindow must be positive")
	}
	if l.MaxRetractSteps <= 0 || l.MaxStationaryExtrude <= 0 {
		return fmt.Errorf("detect: extrusion limits must be positive")
	}
	return nil
}

// Violation is one golden-free rule hit.
type Violation struct {
	Index  uint32
	Rule   string
	Detail string
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("Index: %d, Rule: %s, %s", v.Index, v.Rule, v.Detail)
}

// GoldenFreeReport is the rule engine's verdict.
type GoldenFreeReport struct {
	Violations   []Violation
	NumChecked   int
	TrojanLikely bool
}

// Format renders the report in the same style as the golden-based tool.
func (r GoldenFreeReport) Format() string {
	var sb strings.Builder
	for _, v := range r.Violations {
		fmt.Fprintln(&sb, v.String())
	}
	fmt.Fprintf(&sb, "Number of transactions checked: %d\n", r.NumChecked)
	fmt.Fprintf(&sb, "Number of violations: %d\n", len(r.Violations))
	if r.TrojanLikely {
		fmt.Fprintln(&sb, "Trojan likely!")
	} else {
		fmt.Fprintln(&sb, "No Trojan suspected.")
	}
	return sb.String()
}

// RuleEngine is the streaming golden-free detector: each observed
// transaction is checked against the machine-physics plausibility rules,
// and the first violation trips the engine so a live run can be halted.
type RuleEngine struct {
	limits Limits

	n                 int
	prev              capture.Transaction
	eHighWater        int32
	stationaryExtrude int32
	violations        []Violation
	tripped           bool
	trip              *Violation
}

// NewRuleEngine builds a golden-free detector over the machine envelope.
func NewRuleEngine(limits Limits) (*RuleEngine, error) {
	if err := limits.Validate(); err != nil {
		return nil, err
	}
	return &RuleEngine{limits: limits}, nil
}

// Name identifies the strategy in reports.
func (e *RuleEngine) Name() string { return goldenFreeName }

// goldenFreeName is the rule engine's report identity; Report.Format keys
// its summary vocabulary (violations vs mismatches) on it.
const goldenFreeName = "golden-free"

// Observe checks one transaction against the plausibility rules.
func (e *RuleEngine) Observe(tx capture.Transaction) Verdict {
	add := func(rule, detail string) {
		v := Violation{Index: tx.Index, Rule: rule, Detail: detail}
		e.violations = append(e.violations, v)
		if !e.tripped {
			e.tripped = true
			e.trip = &v
		}
	}
	limits := e.limits

	// Rule 1: counts inside the build volume.
	for _, ax := range []struct {
		name string
		v    int32
		max  int32
	}{
		{"X", tx.X, limits.MaxXSteps},
		{"Y", tx.Y, limits.MaxYSteps},
		{"Z", tx.Z, limits.MaxZSteps},
	} {
		if ax.v < limits.MinSteps || ax.v > ax.max {
			add("build-volume",
				fmt.Sprintf("Column: %s, Value: %d outside [%d, %d]", ax.name, ax.v, limits.MinSteps, ax.max))
		}
	}

	if tx.E > e.eHighWater {
		e.eHighWater = tx.E
	}
	// Rule 2: filament regression bounded by retraction depth.
	if e.eHighWater-tx.E > limits.MaxRetractSteps {
		add("retract-depth",
			fmt.Sprintf("E regressed %d steps below high water", e.eHighWater-tx.E))
	}

	if e.n > 0 {
		// Rule 3: per-window step rate within the machine envelope.
		for _, ax := range []struct {
			name     string
			v, prevV int32
		}{
			{"X", tx.X, e.prev.X}, {"Y", tx.Y, e.prev.Y},
		} {
			delta := ax.v - ax.prevV
			if delta < 0 {
				delta = -delta
			}
			if delta > limits.MaxStepsPerWindow {
				add("step-rate",
					fmt.Sprintf("Column: %s, %d steps in one window (max %d)", ax.name, delta, limits.MaxStepsPerWindow))
			}
		}

		// Rule 4: sustained stationary extrusion (blob).
		de := tx.E - e.prev.E
		moved := tx.X != e.prev.X || tx.Y != e.prev.Y || tx.Z != e.prev.Z
		if de > 0 && !moved {
			e.stationaryExtrude += de
			if e.stationaryExtrude > limits.MaxStationaryExtrude {
				add("stationary-extrude",
					fmt.Sprintf("%d E steps with no motion (max %d)", e.stationaryExtrude, limits.MaxStationaryExtrude))
				e.stationaryExtrude = 0 // report once per blob
			}
		} else if moved {
			e.stationaryExtrude = 0
		}
	}
	e.n++
	e.prev = tx
	return Verdict{Tripped: e.tripped, Violation: e.trip}
}

// Tripped reports whether any rule has fired.
func (e *RuleEngine) Tripped() bool { return e.tripped }

// Finalize assembles the rule engine's report. Golden-free detection has
// no end-of-stream check; the report is the accumulated violations.
func (e *RuleEngine) Finalize() *Report {
	return &Report{
		Detector:     e.Name(),
		NumCompared:  e.n,
		Violations:   append([]Violation(nil), e.violations...),
		Tripped:      e.tripped,
		TrojanLikely: len(e.violations) > 0,
	}
}

// CheckGoldenFree runs the plausibility rules over a capture — a thin
// replay adapter over the streaming RuleEngine.
func CheckGoldenFree(rec *capture.Recording, limits Limits) (GoldenFreeReport, error) {
	var r GoldenFreeReport
	if rec == nil || rec.Len() == 0 {
		if err := limits.Validate(); err != nil {
			return r, err
		}
		return r, fmt.Errorf("detect: empty capture")
	}
	engine, err := NewRuleEngine(limits)
	if err != nil {
		return r, err
	}
	rep, err := Replay(rec, engine)
	if err != nil {
		return r, err
	}
	r.Violations = rep.Violations
	r.NumChecked = rep.NumCompared
	r.TrojanLikely = rep.TrojanLikely
	return r, nil
}
