package detect

import (
	"strings"
	"testing"

	"offramps/internal/capture"
)

// healthyStream is a plausible print fragment: XY motion with steady
// extrusion and one retraction/unretract cycle.
func healthyStream() *capture.Recording {
	r := &capture.Recording{}
	txs := []capture.Transaction{
		{Index: 0, X: 100, Y: 100, Z: 80, E: 0},
		{Index: 1, X: 900, Y: 400, Z: 80, E: 50},
		{Index: 2, X: 1700, Y: 700, Z: 80, E: 100},
		{Index: 3, X: 1700, Y: 700, Z: 80, E: 23}, // retract 0.8 mm (77 steps)
		{Index: 4, X: 2600, Y: 1400, Z: 80, E: 23},
		{Index: 5, X: 2600, Y: 1400, Z: 80, E: 100}, // unretract
		{Index: 6, X: 3400, Y: 1800, Z: 80, E: 160},
	}
	for _, tx := range txs {
		r.Append(tx)
	}
	return r
}

func TestGoldenFreeHealthyPasses(t *testing.T) {
	rep, err := CheckGoldenFree(healthyStream(), DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrojanLikely {
		t.Fatalf("healthy stream flagged:\n%s", rep.Format())
	}
	if rep.NumChecked != 7 {
		t.Errorf("NumChecked = %d", rep.NumChecked)
	}
	if !strings.Contains(rep.Format(), "No Trojan suspected.") {
		t.Error("Format() verdict missing")
	}
}

func TestGoldenFreeBuildVolume(t *testing.T) {
	r := healthyStream()
	r.Append(capture.Transaction{Index: 7, X: 30_000, Y: 1800, Z: 80, E: 160})
	rep, err := CheckGoldenFree(r, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TrojanLikely {
		t.Fatal("out-of-volume X not flagged")
	}
	if rep.Violations[0].Rule != "build-volume" && !containsRule(rep, "build-volume") {
		t.Errorf("violations: %+v", rep.Violations)
	}
	// Negative beyond homing slack too.
	r2 := healthyStream()
	r2.Append(capture.Transaction{Index: 7, X: -500, Y: 1800, Z: 80, E: 160})
	rep2, _ := CheckGoldenFree(r2, DefaultLimits())
	if !containsRule(rep2, "build-volume") {
		t.Error("negative X not flagged")
	}
}

func TestGoldenFreeStepRate(t *testing.T) {
	r := healthyStream()
	// 5000 steps in one 0.1 s window = 62 mm in 0.1 s = 620 mm/s.
	r.Append(capture.Transaction{Index: 7, X: 3400 + 5000, Y: 1800, Z: 80, E: 160})
	rep, err := CheckGoldenFree(r, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !containsRule(rep, "step-rate") {
		t.Fatalf("impossible step rate not flagged:\n%s", rep.Format())
	}
}

func TestGoldenFreeRetractDepth(t *testing.T) {
	r := healthyStream()
	// E runs 500 steps (5.2 mm) backwards: no retraction is that deep.
	r.Append(capture.Transaction{Index: 7, X: 3400, Y: 1900, Z: 80, E: -340})
	rep, err := CheckGoldenFree(r, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !containsRule(rep, "retract-depth") {
		t.Fatalf("deep E regression not flagged:\n%s", rep.Format())
	}
}

func TestGoldenFreeStationaryExtrude(t *testing.T) {
	r := healthyStream()
	// 3 windows of in-place extrusion: 3 mm of filament into a blob —
	// the relocation trojan's signature.
	r.Append(capture.Transaction{Index: 7, X: 3400, Y: 1800, Z: 80, E: 256})
	r.Append(capture.Transaction{Index: 8, X: 3400, Y: 1800, Z: 80, E: 352})
	r.Append(capture.Transaction{Index: 9, X: 3400, Y: 1800, Z: 80, E: 448})
	rep, err := CheckGoldenFree(r, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !containsRule(rep, "stationary-extrude") {
		t.Fatalf("blob not flagged:\n%s", rep.Format())
	}
}

func TestGoldenFreeUnretractNotFlagged(t *testing.T) {
	// A single unretract (≤0.8 mm in place) must not look like a blob.
	r := &capture.Recording{}
	r.Append(capture.Transaction{Index: 0, X: 100, Y: 100, Z: 80, E: 100})
	r.Append(capture.Transaction{Index: 1, X: 100, Y: 100, Z: 80, E: 177})
	rep, err := CheckGoldenFree(r, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrojanLikely {
		t.Fatalf("unretract flagged:\n%s", rep.Format())
	}
}

func TestGoldenFreeValidation(t *testing.T) {
	if _, err := CheckGoldenFree(nil, DefaultLimits()); err == nil {
		t.Error("nil capture accepted")
	}
	if _, err := CheckGoldenFree(&capture.Recording{}, DefaultLimits()); err == nil {
		t.Error("empty capture accepted")
	}
	bad := DefaultLimits()
	bad.MaxXSteps = 0
	if _, err := CheckGoldenFree(healthyStream(), bad); err == nil {
		t.Error("zero build volume accepted")
	}
	bad = DefaultLimits()
	bad.MaxStepsPerWindow = 0
	if _, err := CheckGoldenFree(healthyStream(), bad); err == nil {
		t.Error("zero step rate accepted")
	}
	bad = DefaultLimits()
	bad.MaxRetractSteps = 0
	if _, err := CheckGoldenFree(healthyStream(), bad); err == nil {
		t.Error("zero retract limit accepted")
	}
}

func containsRule(rep GoldenFreeReport, rule string) bool {
	for _, v := range rep.Violations {
		if v.Rule == rule {
			return true
		}
	}
	return false
}
