// Package detect implements the paper's trojan detection strategy (§V-C):
// compare the captured pulse counts of a print, window by window, against
// a known-good ("golden") capture. Counts that diverge by more than the
// margin of error indicate interference; a final end-of-print check with
// 0 % margin catches trojans stealthy enough to hide inside the margin.
//
// The 5 % margin exists because additive manufacturing systems are
// asynchronous: identical prints drift slightly in time ("time noise"),
// so a transaction window can open a few steps early or late. The margin
// was "always less than a 5 % difference" in the paper's testing, and the
// drift experiment in this repository reproduces that bound.
package detect

import (
	"fmt"
	"math"
	"strings"

	"offramps/internal/capture"
)

// Config holds detector parameters.
type Config struct {
	// Margin is the per-window relative tolerance (0.05 = the paper's 5%).
	Margin float64
	// MinAbsolute is a sub-resolution guard: count differences at or
	// below this many steps are never mismatches even when the relative
	// difference exceeds Margin. It matters only in the first few windows
	// after homing, where counts are tens of steps and a single microstep
	// of window-boundary jitter is a multi-percent relative swing. The
	// paper's counts are in the thousands, where a 5 % margin dwarfs this
	// guard, so it changes nothing in the paper's regime (see DESIGN.md).
	MinAbsolute int32
	// MaxReported caps the mismatches retained in the report (the full
	// count is always reported; this only bounds the detail list).
	MaxReported int
}

// DefaultConfig returns the paper's detector settings.
func DefaultConfig() Config {
	return Config{Margin: 0.05, MinAbsolute: 4, MaxReported: 64}
}

// Validate reports the first invalid field, or nil.
func (c Config) Validate() error {
	if c.Margin < 0 || c.Margin >= 1 {
		return fmt.Errorf("detect: Margin must be in [0,1), got %v", c.Margin)
	}
	if c.MinAbsolute < 0 {
		return fmt.Errorf("detect: MinAbsolute must be non-negative")
	}
	if c.MaxReported < 0 {
		return fmt.Errorf("detect: MaxReported must be non-negative")
	}
	return nil
}

// Mismatch is one out-of-margin window/column pair, as printed in the
// paper's Figure 4c ("Index: 5115, Column: X, Values: 7218, 6489").
type Mismatch struct {
	Index   uint32
	Column  string
	Golden  int32
	Suspect int32
}

// String renders the mismatch in the Figure 4c format.
func (m Mismatch) String() string {
	return fmt.Sprintf("Index: %d, Column: %s, Values: %d, %d", m.Index, m.Column, m.Golden, m.Suspect)
}

// FinalMismatch is an exact-count divergence at the end of the print.
type FinalMismatch struct {
	Column  string
	Golden  int32
	Suspect int32
}

// Report is a detector's verdict plus the metadata the paper's tool
// prints: total mismatches, the largest percentage difference, and the
// number of transactions compared. All Detector implementations finalize
// into this one type; fields a strategy does not produce are left zero
// (a golden-free report has no Mismatches, a golden report no
// Violations).
type Report struct {
	Detector       string     // which detector produced the report
	Mismatches     []Mismatch // detail list, capped at Config.MaxReported
	NumMismatches  int        // total mismatches found
	NumCompared    int        // transactions compared / checked
	LargestPercent float64    // largest percent difference found
	// LargestSubstantial is the largest percent difference among windows
	// whose golden count is at least SubstantialCount steps. The paper's
	// "always less than a 5 % difference" drift bound is about counts in
	// the thousands; the first windows after capture start hold a handful
	// of steps where ±1 step is a double-digit relative swing, so the raw
	// LargestPercent overstates drift in a way the margin (with its
	// absolute guard) already tolerates.
	LargestSubstantial float64
	Final              []FinalMismatch
	LengthDelta        int // suspect length − golden length
	// Violations holds the golden-free rule engine's hits.
	Violations []Violation
	// Tripped and Trip record a live detector's mid-stream halt decision.
	Tripped bool
	Trip    *Mismatch
	// Sub holds the member reports of an Ensemble, in member order.
	Sub          []*Report
	TrojanLikely bool // the verdict
}

// Format renders the report in the style of the paper's Figure 4c.
func (r Report) Format() string {
	var sb strings.Builder
	for _, sub := range r.Sub {
		fmt.Fprintf(&sb, "--- %s ---\n", sub.Detector)
		sb.WriteString(sub.Format())
	}
	for _, m := range r.Mismatches {
		fmt.Fprintln(&sb, m.String())
	}
	if len(r.Sub) == 0 && len(r.Mismatches) < r.NumMismatches {
		// An ensemble's aggregate count is itemized in the Sub sections
		// above; the cap note applies only to a flat report's own list.
		fmt.Fprintf(&sb, "... (%d further mismatches)\n", r.NumMismatches-len(r.Mismatches))
	}
	for _, v := range r.Violations {
		fmt.Fprintln(&sb, v.String())
	}
	for _, f := range r.Final {
		fmt.Fprintf(&sb, "Final count mismatch, Column: %s, Values: %d, %d\n", f.Column, f.Golden, f.Suspect)
	}
	if r.LengthDelta != 0 {
		fmt.Fprintf(&sb, "Capture length differs by %d transactions\n", r.LengthDelta)
	}
	if len(r.Sub) > 0 {
		fmt.Fprintf(&sb, "--- %s verdict ---\n", r.Detector)
	}
	if r.Detector == goldenFreeName {
		// A golden-free report has no reference to diverge from; its
		// summary speaks in violations, matching the legacy tool output.
		fmt.Fprintf(&sb, "Number of transactions checked: %d\n", r.NumCompared)
		fmt.Fprintf(&sb, "Number of violations: %d\n", len(r.Violations))
	} else {
		fmt.Fprintf(&sb, "Largest percent difference found: %.2f%%\n", r.LargestPercent)
		fmt.Fprintf(&sb, "Number of transactions compared: %d\n", r.NumCompared)
		fmt.Fprintf(&sb, "Number of mismatches: %d\n", r.NumMismatches)
		if len(r.Violations) > 0 {
			fmt.Fprintf(&sb, "Number of violations: %d\n", len(r.Violations))
		}
	}
	if r.TrojanLikely {
		fmt.Fprintln(&sb, "Trojan likely!")
	} else {
		fmt.Fprintln(&sb, "No Trojan suspected.")
	}
	return sb.String()
}

// SubstantialCount is the golden-count floor above which a window
// contributes to Report.LargestSubstantial.
const SubstantialCount = 100

// percentDiff computes |g−s| relative to the golden value, in percent.
// A zero golden value with a non-zero suspect is an unbounded divergence;
// it is reported as 100 %.
func percentDiff(g, s int32) float64 {
	if g == s {
		return 0
	}
	if g == 0 {
		return 100
	}
	return math.Abs(float64(g)-float64(s)) / math.Abs(float64(g)) * 100
}

// Compare runs the detection algorithm — per-window margin comparison
// over the overlapping prefix, then the exact final-count check — by
// replaying the suspect recording through a batch golden Detector. It is
// a thin adapter kept for the paper's original two-capture workflow.
func Compare(golden, suspect *capture.Recording, cfg Config) (Report, error) {
	if golden == nil || suspect == nil {
		return Report{}, fmt.Errorf("detect: nil recording")
	}
	d, err := NewComparator(golden, cfg)
	if err != nil {
		return Report{}, err
	}
	rep, err := Replay(suspect, d)
	if err != nil {
		return Report{}, err
	}
	return *rep, nil
}
