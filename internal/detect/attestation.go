package detect

import (
	"fmt"

	"offramps/internal/capture"
)

// PairObserver is implemented by detectors that consume synchronized
// per-window observation *pairs* from two taps of the same run — the
// upstream (Arduino-side) view of what the firmware commanded and the
// downstream (RAMPS-side) view of what the printer received. The run
// layer feeds a dual-bound detector through ObservePair instead of
// Observe; binding a PairObserver to a single tap (or a plain Detector
// to the dual tap) is a configuration error caught before the print
// starts.
type PairObserver interface {
	Detector
	// ObservePair consumes one window's transaction from each side.
	// The two transactions must carry the same index.
	ObservePair(upstream, downstream capture.Transaction) Verdict
}

// attestationName is the Attestation detector's registry and report
// identity.
const attestationName = "attestation"

// DefaultAttestationConfig returns the attestation detector's default
// parameters. Unlike the golden comparison — two physically separate
// prints whose timing drifts apart ("time noise", bounded by the
// paper's 5 % margin) — attestation diffs two simultaneous views of ONE
// print. The only legitimate divergence between them is window-boundary
// skew: the two exporters synchronize on their own bus's first step
// edge, so a step landing within the FPGA propagation delay of a window
// boundary can be counted one window apart. That is worth a few steps,
// never a few percent, so the margin is far tighter than the golden
// detector's.
func DefaultAttestationConfig() Config {
	return Config{Margin: 0.01, MinAbsolute: 4, MaxReported: 64}
}

// Attestation is the golden-free board self-attestation detector: it
// consumes the two synchronized captures of a dual-tap run and flags any
// divergence between the board's upstream and downstream views of the
// same print. Anything the board itself modified — and nothing else —
// shows up as disagreement between the two taps, so a SINGLE simulation
// detects board-resident trojans with no golden reference and no second
// run. This inverts the paper's §V-D co-location limitation ("both the
// attacks and defense would be co-located in the same FPGA"): instead of
// trusting the board's one capture, the rig captures both sides and
// makes the board testify against itself.
//
// Attestation is a live detector: it trips at the first out-of-margin
// pair, so under AbortOnTrip a board-run trojan halts its own print
// mid-job. Finalize runs a 0 %-margin final-count check between the last
// observed pair, catching sub-margin skimming the same way the golden
// detector's end-of-print check does.
type Attestation struct {
	cfg Config

	pos      int                  // next pair index expected
	pending  *capture.Transaction // upstream half of the current pair
	compared int

	mismatches         []Mismatch
	numMismatches      int
	largest            float64
	largestSubstantial float64
	tripped            bool
	trip               *Mismatch

	lastUp   capture.Transaction
	lastDown capture.Transaction
	seen     bool // at least one complete pair observed
}

// NewAttestation builds the dual-tap self-attestation detector.
func NewAttestation(cfg Config) (*Attestation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Attestation{cfg: cfg}, nil
}

// Name identifies the detector in reports.
func (a *Attestation) Name() string { return attestationName }

// ObservePair consumes one window from each side and compares them. The
// upstream transaction is the reference: it records what the firmware
// commanded, so any downstream deviation is the board's own doing.
func (a *Attestation) ObservePair(upstream, downstream capture.Transaction) Verdict {
	if v := a.Observe(upstream); v.Err != nil {
		return v
	}
	return a.Observe(downstream)
}

// Observe implements the plain Detector stream protocol over an
// interleaved dual stream: for each window index, the upstream
// transaction arrives first and its downstream counterpart second. Out-
// of-protocol indices are stream errors — an attestation fed a single-
// tap stream fails loudly instead of comparing a window against its own
// neighbour.
func (a *Attestation) Observe(tx capture.Transaction) Verdict {
	if a.pending == nil {
		if int(tx.Index) != a.pos {
			v := a.verdict()
			v.Err = fmt.Errorf("detect: attestation expected upstream index %d, got %d", a.pos, tx.Index)
			return v
		}
		up := tx
		a.pending = &up
		return a.verdict()
	}
	if tx.Index != a.pending.Index {
		v := a.verdict()
		v.Err = fmt.Errorf("detect: attestation expected downstream index %d, got %d", a.pending.Index, tx.Index)
		return v
	}
	up := *a.pending
	a.pending = nil
	a.pos++
	// lastUp/lastDown advance only on pair completion, so the final
	// 0 %-margin check always compares the two sides at the SAME window —
	// a dangling upstream half never skews it.
	a.lastUp = up
	a.lastDown = tx
	a.seen = true
	a.compared++

	for _, col := range capture.Columns {
		uv, _ := up.Column(col)
		dv, _ := tx.Column(col)
		pd := percentDiff(uv, dv)
		if pd > a.largest {
			a.largest = pd
		}
		if (uv >= SubstantialCount || uv <= -SubstantialCount) && pd > a.largestSubstantial {
			a.largestSubstantial = pd
		}
		absDiff := int64(uv) - int64(dv)
		if absDiff < 0 {
			absDiff = -absDiff
		}
		if pd > a.cfg.Margin*100 && absDiff > int64(a.cfg.MinAbsolute) {
			a.numMismatches++
			m := Mismatch{Index: tx.Index, Column: col, Golden: uv, Suspect: dv}
			if len(a.mismatches) < a.cfg.MaxReported {
				a.mismatches = append(a.mismatches, m)
			}
			if !a.tripped {
				a.tripped = true
				a.trip = &m
			}
		}
	}
	return a.verdict()
}

func (a *Attestation) verdict() Verdict {
	return Verdict{Tripped: a.tripped, Trip: a.trip}
}

// Tripped reports whether the detector has flagged the print.
func (a *Attestation) Tripped() bool { return a.tripped }

// Pairs reports how many complete (upstream, downstream) pairs have been
// compared.
func (a *Attestation) Pairs() int { return a.compared }

// Finalize runs the 0 %-margin final check between the last complete
// pair's two sides and assembles the report. A dangling unpaired
// upstream window (possible only when replaying a truncated interleaved
// stream — the live feed delivers complete pairs) surfaces as a negative
// LengthDelta and flags the report, matching ReplayDual's and the run
// layer's imbalance semantics: a window one view produced and the other
// never did is itself a divergence. Finalize does not mutate detector
// state.
func (a *Attestation) Finalize() *Report {
	r := &Report{
		Detector:           a.Name(),
		Mismatches:         append([]Mismatch(nil), a.mismatches...),
		NumMismatches:      a.numMismatches,
		NumCompared:        a.compared,
		LargestPercent:     a.largest,
		LargestSubstantial: a.largestSubstantial,
		Tripped:            a.tripped,
		Trip:               a.trip,
	}
	if a.pending != nil {
		// Downstream view is one window short of upstream.
		r.LengthDelta = -1
	}
	// An entirely empty stream is a non-verdict — unlike the golden
	// detector there is no reference to have diverged from — but once
	// anything arrived, the final check and the pairing imbalance both
	// count as divergence.
	if a.seen {
		for _, col := range capture.Columns {
			uv, _ := a.lastUp.Column(col)
			dv, _ := a.lastDown.Column(col)
			if uv != dv {
				r.Final = append(r.Final, FinalMismatch{Column: col, Golden: uv, Suspect: dv})
			}
		}
	}
	r.TrojanLikely = a.tripped || r.NumMismatches > 0 || len(r.Final) > 0 || r.LengthDelta != 0
	return r
}

// ReplayDual feeds two synchronized recordings of the same run through a
// pair-consuming detector window by window and finalizes it — the batch
// form of dual-tap attestation. Only the overlapping prefix is fed as
// pairs; a side-length difference is stamped onto the report via
// FlagImbalance, because windows one view produced and the other never
// did are themselves a divergence between the views (a board suppressing
// its trailing exports must not pass attestation clean).
func ReplayDual(upstream, downstream *capture.Recording, d PairObserver) (*Report, error) {
	if upstream == nil || downstream == nil {
		return nil, fmt.Errorf("detect: nil recording")
	}
	n := upstream.Len()
	if downstream.Len() < n {
		n = downstream.Len()
	}
	for i := 0; i < n; i++ {
		if v := d.ObservePair(upstream.Transactions[i], downstream.Transactions[i]); v.Err != nil {
			return nil, fmt.Errorf("detect: dual replay through %s: %w", d.Name(), v.Err)
		}
	}
	rep := d.Finalize()
	FlagImbalance(rep, downstream.Len()-upstream.Len())
	return rep, nil
}

// FlagImbalance records a side-length imbalance (downstream − upstream
// windows) on a dual-feed report and flags it: one view having windows
// the other never produced is a divergence no per-pair comparison can
// see. A zero delta, or a report that already carries its own length
// accounting, is left untouched. Callers that pair the two streams
// themselves (ReplayDual, the run layer's dual feed) apply this after
// Finalize, since the detector is only ever shown complete pairs.
func FlagImbalance(rep *Report, delta int) {
	if delta == 0 || rep.LengthDelta != 0 {
		return
	}
	rep.LengthDelta = delta
	rep.TrojanLikely = true
}
