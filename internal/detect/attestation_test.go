package detect

import (
	"encoding/json"
	"strings"
	"testing"

	"offramps/internal/capture"
)

// pairStream interleaves two recordings into the (up0, down0, up1,
// down1, ...) stream the attestation's plain Observe protocol consumes.
func pairStream(up, down *capture.Recording) *capture.Recording {
	n := up.Len()
	if down.Len() < n {
		n = down.Len()
	}
	out := &capture.Recording{}
	for i := 0; i < n; i++ {
		out.Transactions = append(out.Transactions, up.Transactions[i], down.Transactions[i])
	}
	return out
}

func mustAttestation(t *testing.T) *Attestation {
	t.Helper()
	a, err := NewAttestation(DefaultAttestationConfig())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAttestationCleanPairsPass(t *testing.T) {
	up := rec(100, 200, 300, 400)
	a := mustAttestation(t)
	rep, err := ReplayDual(up, rec(100, 200, 300, 400), a)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrojanLikely {
		t.Fatalf("identical views flagged:\n%s", rep.Format())
	}
	if rep.NumCompared != 4 {
		t.Errorf("NumCompared = %d, want 4", rep.NumCompared)
	}
	if rep.Detector != "attestation" {
		t.Errorf("Detector = %q", rep.Detector)
	}
}

func TestAttestationToleratesBoundarySkew(t *testing.T) {
	// A step landing on a window boundary can be counted one window apart
	// between the taps: a few steps of transient divergence that the
	// absolute guard must absorb, including on small early counts where
	// the relative swing is large.
	up := rec(10, 200, 300, 400)
	down := rec(8, 202, 300, 400) // ±2 steps of transient skew, settled by the end
	rep, err := ReplayDual(up, down, mustAttestation(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrojanLikely {
		t.Fatalf("transient boundary skew flagged:\n%s", rep.Format())
	}
	if rep.NumMismatches != 0 {
		t.Errorf("boundary skew produced %d windowed mismatches", rep.NumMismatches)
	}
}

func TestAttestationFinalCheckCatchesSubMarginSkim(t *testing.T) {
	// A divergence small enough to hide under the per-window absolute
	// guard but persisting to the end of the print: the 0 %-margin final
	// check reports it, matching the golden detector's end-of-print
	// semantics.
	up := rec(100, 200, 300, 400)
	down := rec(100, 200, 300, 398)
	rep, err := ReplayDual(up, down, mustAttestation(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumMismatches != 0 {
		t.Errorf("sub-guard skim produced %d windowed mismatches", rep.NumMismatches)
	}
	if len(rep.Final) == 0 {
		t.Fatal("persistent final divergence not reported by the 0%-margin check")
	}
	if !rep.TrojanLikely {
		t.Error("final-count divergence did not flag the print")
	}
}

func TestAttestationCatchesMasking(t *testing.T) {
	// A board trojan masking half the extruder pulses: downstream E falls
	// behind upstream immediately. The detector must trip mid-stream.
	up := &capture.Recording{Transactions: []capture.Transaction{
		{Index: 0, X: 10, Y: 10, Z: 5, E: 100},
		{Index: 1, X: 20, Y: 20, Z: 5, E: 200},
		{Index: 2, X: 30, Y: 30, Z: 5, E: 300},
	}}
	down := &capture.Recording{Transactions: []capture.Transaction{
		{Index: 0, X: 10, Y: 10, Z: 5, E: 50},
		{Index: 1, X: 20, Y: 20, Z: 5, E: 100},
		{Index: 2, X: 30, Y: 30, Z: 5, E: 150},
	}}
	a := mustAttestation(t)
	v := a.ObservePair(up.Transactions[0], down.Transactions[0])
	if !v.Tripped {
		t.Fatal("halved extrusion did not trip on the first pair")
	}
	if v.Trip == nil || v.Trip.Column != "E" {
		t.Fatalf("trip = %+v, want an E-column mismatch", v.Trip)
	}
	rep, err := ReplayDual(up, down, mustAttestation(t))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TrojanLikely || !rep.Tripped {
		t.Fatalf("masking not flagged:\n%s", rep.Format())
	}
	if len(rep.Final) == 0 {
		t.Error("final-count divergence missing from the report")
	}
	if !strings.Contains(rep.Format(), "Trojan likely!") {
		t.Error("Format() missing the verdict line")
	}
}

func TestAttestationStreamProtocolErrors(t *testing.T) {
	a := mustAttestation(t)
	// Upstream must start at index 0.
	if v := a.Observe(capture.Transaction{Index: 3}); v.Err == nil {
		t.Error("out-of-order upstream index accepted")
	}
	// Downstream must pair the pending upstream index.
	a = mustAttestation(t)
	if v := a.Observe(capture.Transaction{Index: 0}); v.Err != nil {
		t.Fatal(v.Err)
	}
	if v := a.Observe(capture.Transaction{Index: 1}); v.Err == nil {
		t.Error("mismatched downstream index accepted")
	}
	// ObservePair with disagreeing indices fails the same way.
	a = mustAttestation(t)
	if v := a.ObservePair(capture.Transaction{Index: 0}, capture.Transaction{Index: 1}); v.Err == nil {
		t.Error("mismatched pair accepted")
	}
}

func TestAttestationEmptyAndDanglingStreams(t *testing.T) {
	// No pairs at all: nothing to attest, not a detection.
	rep := mustAttestation(t).Finalize()
	if rep.TrojanLikely {
		t.Error("empty attestation stream flagged")
	}
	if rep.NumCompared != 0 {
		t.Errorf("NumCompared = %d, want 0", rep.NumCompared)
	}
	// A dangling upstream half surfaces as a negative length delta and
	// flags: the downstream view is missing a window upstream produced.
	a := mustAttestation(t)
	if v := a.Observe(capture.Transaction{Index: 0, X: 5}); v.Err != nil {
		t.Fatal(v.Err)
	}
	rep = a.Finalize()
	if rep.LengthDelta != -1 {
		t.Errorf("LengthDelta = %d, want -1 for a dangling upstream window", rep.LengthDelta)
	}
	if !rep.TrojanLikely {
		t.Error("one-sided window attested clean")
	}
}

// TestAttestationDanglingUpstreamDoesNotSkewFinal: a clean interleaved
// stream truncated after an odd transaction (one complete pair plus an
// unpaired upstream half) must not fabricate final-count mismatches —
// the 0 %-margin check always compares the two sides at the same
// window. The truncation itself is still reported and flagged, but only
// through the LengthDelta, never through invented count divergence.
func TestAttestationDanglingUpstreamDoesNotSkewFinal(t *testing.T) {
	a := mustAttestation(t)
	clean := rec(100, 200) // two windows of a clean print
	if v := a.ObservePair(clean.Transactions[0], clean.Transactions[0]); v.Err != nil {
		t.Fatal(v.Err)
	}
	// The stream cuts off after the next upstream half.
	if v := a.Observe(clean.Transactions[1]); v.Err != nil {
		t.Fatal(v.Err)
	}
	rep := a.Finalize()
	if len(rep.Final) != 0 {
		t.Errorf("dangling upstream fabricated %d final mismatches: %+v", len(rep.Final), rep.Final)
	}
	if rep.NumMismatches != 0 {
		t.Errorf("dangling upstream fabricated %d windowed mismatches", rep.NumMismatches)
	}
	if rep.LengthDelta != -1 {
		t.Errorf("LengthDelta = %d, want -1", rep.LengthDelta)
	}
	if !rep.TrojanLikely {
		t.Error("one-sided trailing window attested clean — imbalance must flag, as in ReplayDual")
	}
}

// TestReplayDualFlagsTruncatedSide: a view that simply stops producing
// windows (a board suppressing its trailing exports) must not pass
// attestation clean — the side-length imbalance is itself the
// divergence.
func TestReplayDualFlagsTruncatedSide(t *testing.T) {
	up := rec(100, 200, 300, 400)
	down := rec(100, 200) // downstream truncated after the tampering point
	rep, err := ReplayDual(up, down, mustAttestation(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.LengthDelta != -2 {
		t.Errorf("LengthDelta = %d, want -2", rep.LengthDelta)
	}
	if !rep.TrojanLikely {
		t.Fatalf("truncated downstream view attested clean:\n%s", rep.Format())
	}
	// Symmetrically for a longer downstream.
	rep, err = ReplayDual(rec(100, 200), rec(100, 200, 300), mustAttestation(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.LengthDelta != 1 || !rep.TrojanLikely {
		t.Errorf("surplus downstream windows not flagged: delta=%d likely=%v", rep.LengthDelta, rep.TrojanLikely)
	}
}

func TestAttestationRegistryFactory(t *testing.T) {
	if !Registered("attestation") {
		t.Fatal("attestation not registered")
	}
	d, err := Build("attestation", nil, BuildEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(PairObserver); !ok {
		t.Fatal("registry-built attestation does not implement PairObserver")
	}
	// Params overlay the defaults strictly.
	if _, err := Build("attestation", json.RawMessage(`{"margin": 0.1}`), BuildEnv{}); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
	if _, err := Build("attestation", json.RawMessage(`{"margni": 0.1}`), BuildEnv{}); err == nil {
		t.Error("unknown param field accepted")
	}
	if _, err := Build("attestation", json.RawMessage(`{"margin": -1}`), BuildEnv{}); err == nil {
		t.Error("invalid margin accepted")
	}
}
