package detect

import (
	"fmt"

	"offramps/internal/capture"
)

// Detector is the streaming detection abstraction every strategy in this
// package implements: the golden comparator, the live monitor, the
// golden-free rule engine, and the Ensemble combinator. A detector
// consumes one capture transaction at a time via Observe and delivers its
// full report via Finalize, so the same implementation serves batch
// (replayed recordings), live (fed from the board mid-print), golden, and
// golden-free detection without forking the run loop.
type Detector interface {
	// Name identifies the strategy in reports ("golden-comparator",
	// "golden-monitor", "golden-free", "ensemble(any)", ...).
	Name() string
	// Observe consumes the next transaction in stream order and returns
	// the detector's standing verdict. Verdicts latch: once Tripped is
	// true it stays true for the rest of the stream.
	Observe(tx capture.Transaction) Verdict
	// Finalize runs the end-of-stream checks (e.g. the paper's 0 %-margin
	// final-count comparison) and returns the complete report. It does
	// not mutate detector state, so it may be called more than once.
	Finalize() *Report
}

// Verdict is a detector's standing judgement after one observation.
type Verdict struct {
	// Tripped latches true once the detector suspects a trojan strongly
	// enough to justify halting the print.
	Tripped bool
	// Trip is the first out-of-margin window (golden-based detectors).
	Trip *Mismatch
	// Violation is the first plausibility-rule hit (golden-free).
	Violation *Violation
	// Err reports a stream-protocol failure such as an out-of-order
	// index; the detector's verdicts are unreliable after a stream error.
	Err error
}

// Reason renders what tripped the detector, or "" when nothing has.
func (v Verdict) Reason() string {
	switch {
	case v.Trip != nil:
		return v.Trip.String()
	case v.Violation != nil:
		return v.Violation.String()
	case v.Tripped:
		return "tripped"
	default:
		return ""
	}
}

// Replay feeds a recorded capture through any detector in stream order
// and finalizes it — the batch form of detection. The golden-based
// Compare and the golden-free CheckGoldenFree are both thin wrappers over
// Replay.
func Replay(rec *capture.Recording, d Detector) (*Report, error) {
	if rec == nil {
		return nil, fmt.Errorf("detect: nil recording")
	}
	for _, tx := range rec.Transactions {
		if v := d.Observe(tx); v.Err != nil {
			return nil, fmt.Errorf("detect: replay through %s: %w", d.Name(), v.Err)
		}
	}
	return d.Finalize(), nil
}
