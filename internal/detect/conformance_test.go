package detect

import (
	"reflect"
	"strings"
	"testing"

	"offramps/internal/capture"
)

// The Detector conformance suite: every implementation — batch
// comparator, live monitor, golden-free rule engine, and both ensemble
// rules — consumes the same transaction streams and must produce the
// expected trip points and final verdicts, plus the interface-wide
// invariants (latching verdicts, idempotent Finalize, Name stamped on
// the report).

// conformanceExpect is one detector's expected behaviour on one stream.
type conformanceExpect struct {
	tripAt int // stream position of the first tripping verdict; -1 = never
	likely bool
}

// detectorFactories builds every Detector implementation against the
// same golden capture and machine limits.
func detectorFactories(t *testing.T, golden *capture.Recording) map[string]func() Detector {
	t.Helper()
	limits := DefaultLimits()
	mk := func(build func() (Detector, error)) func() Detector {
		return func() Detector {
			d, err := build()
			if err != nil {
				t.Fatal(err)
			}
			return d
		}
	}
	return map[string]func() Detector{
		"golden-comparator": mk(func() (Detector, error) { return NewComparator(golden, DefaultConfig()) }),
		"golden-monitor":    mk(func() (Detector, error) { return NewMonitor(golden, DefaultConfig()) }),
		"golden-free":       mk(func() (Detector, error) { return NewRuleEngine(limits) }),
		"ensemble(any)": mk(func() (Detector, error) {
			m, err := NewMonitor(golden, DefaultConfig())
			if err != nil {
				return nil, err
			}
			e, err := NewRuleEngine(limits)
			if err != nil {
				return nil, err
			}
			return NewEnsemble(VoteAny, m, e)
		}),
		"ensemble(all)": mk(func() (Detector, error) {
			m, err := NewMonitor(golden, DefaultConfig())
			if err != nil {
				return nil, err
			}
			e, err := NewRuleEngine(limits)
			if err != nil {
				return nil, err
			}
			return NewEnsemble(VoteAll, m, e)
		}),
	}
}

func TestDetectorConformance(t *testing.T) {
	golden := rec(100, 200, 300, 400)
	cases := []struct {
		name   string
		stream *capture.Recording
		expect map[string]conformanceExpect
	}{
		{
			name:   "clean",
			stream: rec(100, 200, 300, 400),
			expect: map[string]conformanceExpect{
				"golden-comparator": {tripAt: -1, likely: false},
				"golden-monitor":    {tripAt: -1, likely: false},
				"golden-free":       {tripAt: -1, likely: false},
				"ensemble(any)":     {tripAt: -1, likely: false},
				"ensemble(all)":     {tripAt: -1, likely: false},
			},
		},
		{
			// +20 % on X at window 2: a physically plausible divergence —
			// only the golden reference can see it. The monitor halts at
			// the offending window; the comparator flags it at the end.
			name:   "blatant-divergence",
			stream: rec(100, 200, 360, 400),
			expect: map[string]conformanceExpect{
				"golden-comparator": {tripAt: -1, likely: true},
				"golden-monitor":    {tripAt: 2, likely: true},
				"golden-free":       {tripAt: -1, likely: false},
				"ensemble(any)":     {tripAt: 2, likely: true},
				"ensemble(all)":     {tripAt: -1, likely: false},
			},
		},
		{
			// Uniform 2 % reduction: inside the windowed margin, caught
			// only by the 0 %-margin final-count check.
			name:   "stealthy-reduction",
			stream: rec(98, 196, 294, 392),
			expect: map[string]conformanceExpect{
				"golden-comparator": {tripAt: -1, likely: true},
				"golden-monitor":    {tripAt: -1, likely: true},
				"golden-free":       {tripAt: -1, likely: false},
				"ensemble(any)":     {tripAt: -1, likely: true},
				"ensemble(all)":     {tripAt: -1, likely: false},
			},
		},
		{
			// X teleports outside the build volume at window 2: both the
			// golden reference and machine physics see it, so even the
			// ensemble(all) verdict fires.
			name:   "out-of-volume",
			stream: rec(100, 200, 99000, 400),
			expect: map[string]conformanceExpect{
				"golden-comparator": {tripAt: -1, likely: true},
				"golden-monitor":    {tripAt: 2, likely: true},
				"golden-free":       {tripAt: 2, likely: true},
				"ensemble(any)":     {tripAt: 2, likely: true},
				"ensemble(all)":     {tripAt: 2, likely: true},
			},
		},
	}

	factories := detectorFactories(t, golden)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for name, build := range factories {
				want, ok := tc.expect[name]
				if !ok {
					t.Fatalf("case %s has no expectation for %s", tc.name, name)
				}
				t.Run(name, func(t *testing.T) {
					d := build()
					if d.Name() != name {
						t.Errorf("Name() = %q, want %q", d.Name(), name)
					}
					tripAt := -1
					for i, tx := range tc.stream.Transactions {
						v := d.Observe(tx)
						if v.Err != nil {
							t.Fatalf("stream error at %d: %v", i, v.Err)
						}
						if v.Tripped && tripAt < 0 {
							tripAt = i
							if v.Reason() == "" {
								t.Error("tripped verdict has no Reason")
							}
						}
						if !v.Tripped && tripAt >= 0 {
							t.Errorf("verdict un-latched at %d", i)
						}
					}
					if tripAt != want.tripAt {
						t.Errorf("tripped at %d, want %d", tripAt, want.tripAt)
					}
					rep := d.Finalize()
					if rep.TrojanLikely != want.likely {
						t.Errorf("TrojanLikely = %v, want %v\n%s", rep.TrojanLikely, want.likely, rep.Format())
					}
					if rep.Detector != name {
						t.Errorf("report Detector = %q, want %q", rep.Detector, name)
					}
					if rep.Tripped != (want.tripAt >= 0) {
						t.Errorf("report Tripped = %v, want %v", rep.Tripped, want.tripAt >= 0)
					}
					// Finalize must be idempotent.
					if again := d.Finalize(); !reflect.DeepEqual(rep, again) {
						t.Error("second Finalize differs from the first")
					}
					// A fresh detector replaying the same stream agrees.
					replayed, err := Replay(tc.stream, build())
					if err != nil {
						t.Fatal(err)
					}
					if replayed.TrojanLikely != rep.TrojanLikely || replayed.Tripped != rep.Tripped {
						t.Errorf("Replay verdict diverges: %+v vs %+v", replayed, rep)
					}
				})
			}
		})
	}
}

func TestEnsembleConstruction(t *testing.T) {
	if _, err := NewEnsemble(VoteAny); err == nil {
		t.Error("empty ensemble accepted")
	}
	if _, err := NewEnsemble(Vote(42), &RuleEngine{limits: DefaultLimits()}); err == nil {
		t.Error("unknown vote rule accepted")
	}
}

func TestEnsemblePropagatesStreamErrors(t *testing.T) {
	m, err := NewMonitor(rec(1000, 2000), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEnsemble(VoteAny, m)
	if err != nil {
		t.Fatal(err)
	}
	if v := e.Observe(capture.Transaction{Index: 7}); v.Err == nil {
		t.Error("member stream error swallowed")
	}
}

func TestEnsembleReportCarriesMembers(t *testing.T) {
	golden := rec(1000, 2000)
	m, _ := NewMonitor(golden, DefaultConfig())
	re, _ := NewRuleEngine(DefaultLimits())
	e, err := NewEnsemble(VoteAny, m, re)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(rec(1000, 2600), e) // +30% on the final window
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sub) != 2 {
		t.Fatalf("Sub = %d reports, want 2", len(rep.Sub))
	}
	if !rep.TrojanLikely {
		t.Error("any-vote ensemble missed the member verdict")
	}
	out := rep.Format()
	for _, want := range []string{"golden-monitor", "golden-free", "Trojan likely!"} {
		if !strings.Contains(out, want) {
			t.Errorf("ensemble Format() missing %q:\n%s", want, out)
		}
	}
}
