package detect

import (
	"reflect"
	"strings"
	"testing"

	"offramps/internal/capture"
)

// The Detector conformance suite: every implementation — batch
// comparator, live monitor, golden-free rule engine, both ensemble
// rules, and the dual-view attestation — consumes the same transaction
// streams and must produce the expected trip points and final verdicts,
// plus the interface-wide invariants (latching verdicts, idempotent and
// non-mutating Finalize — Observe keeps working after a mid-stream
// Finalize — and the Name stamped on the report).

// conformanceExpect is one detector's expected behaviour on one stream.
type conformanceExpect struct {
	tripAt int // stream position of the first tripping verdict; -1 = never
	likely bool
}

// conformant couples a Detector constructor with its stream shape:
// single-tap detectors consume the suspect stream as-is, while the
// attestation consumes the interleaved (golden-as-upstream, suspect-as-
// downstream) pair stream — the plain-Observe form of its dual feed.
type conformant struct {
	build func() Detector
	feed  func(golden, suspect *capture.Recording) []capture.Transaction
}

// singleFeed is the identity stream shape.
func singleFeed(_, suspect *capture.Recording) []capture.Transaction {
	return suspect.Transactions
}

// interleavedFeed builds the attestation's (up0, down0, up1, down1, ...)
// protocol stream.
func interleavedFeed(golden, suspect *capture.Recording) []capture.Transaction {
	n := golden.Len()
	if suspect.Len() < n {
		n = suspect.Len()
	}
	out := make([]capture.Transaction, 0, 2*n)
	for i := 0; i < n; i++ {
		out = append(out, golden.Transactions[i], suspect.Transactions[i])
	}
	return out
}

// detectorFactories builds every Detector implementation against the
// same golden capture and machine limits.
func detectorFactories(t *testing.T, golden *capture.Recording) map[string]conformant {
	t.Helper()
	limits := DefaultLimits()
	mk := func(build func() (Detector, error)) func() Detector {
		return func() Detector {
			d, err := build()
			if err != nil {
				t.Fatal(err)
			}
			return d
		}
	}
	single := func(build func() (Detector, error)) conformant {
		return conformant{build: mk(build), feed: singleFeed}
	}
	return map[string]conformant{
		"golden-comparator": single(func() (Detector, error) { return NewComparator(golden, DefaultConfig()) }),
		"golden-monitor":    single(func() (Detector, error) { return NewMonitor(golden, DefaultConfig()) }),
		"golden-free":       single(func() (Detector, error) { return NewRuleEngine(limits) }),
		"ensemble(any)": single(func() (Detector, error) {
			m, err := NewMonitor(golden, DefaultConfig())
			if err != nil {
				return nil, err
			}
			e, err := NewRuleEngine(limits)
			if err != nil {
				return nil, err
			}
			return NewEnsemble(VoteAny, m, e)
		}),
		"ensemble(all)": single(func() (Detector, error) {
			m, err := NewMonitor(golden, DefaultConfig())
			if err != nil {
				return nil, err
			}
			e, err := NewRuleEngine(limits)
			if err != nil {
				return nil, err
			}
			return NewEnsemble(VoteAll, m, e)
		}),
		"attestation": {
			build: mk(func() (Detector, error) { return NewAttestation(DefaultAttestationConfig()) }),
			feed:  interleavedFeed,
		},
	}
}

func TestDetectorConformance(t *testing.T) {
	golden := rec(100, 200, 300, 400)
	cases := []struct {
		name   string
		stream *capture.Recording
		expect map[string]conformanceExpect
	}{
		{
			name:   "clean",
			stream: rec(100, 200, 300, 400),
			expect: map[string]conformanceExpect{
				"golden-comparator": {tripAt: -1, likely: false},
				"golden-monitor":    {tripAt: -1, likely: false},
				"golden-free":       {tripAt: -1, likely: false},
				"ensemble(any)":     {tripAt: -1, likely: false},
				"ensemble(all)":     {tripAt: -1, likely: false},
				"attestation":       {tripAt: -1, likely: false},
			},
		},
		{
			// +20 % on X at window 2: a physically plausible divergence —
			// only the golden reference can see it. The monitor halts at
			// the offending window; the comparator flags it at the end.
			// The attestation (fed the same divergence as a pair stream)
			// trips on the downstream half of pair 2 — interleaved
			// position 5.
			name:   "blatant-divergence",
			stream: rec(100, 200, 360, 400),
			expect: map[string]conformanceExpect{
				"golden-comparator": {tripAt: -1, likely: true},
				"golden-monitor":    {tripAt: 2, likely: true},
				"golden-free":       {tripAt: -1, likely: false},
				"ensemble(any)":     {tripAt: 2, likely: true},
				"ensemble(all)":     {tripAt: -1, likely: false},
				"attestation":       {tripAt: 5, likely: true},
			},
		},
		{
			// Uniform 2 % reduction: inside the golden detectors' windowed
			// 5 % margin, caught only by their 0 %-margin final-count
			// check. The attestation's margin is far tighter (its two
			// views share one print, so there is no time noise to
			// tolerate): it trips as soon as the divergence clears the
			// absolute guard — the Y column of pair 1, position 3.
			name:   "stealthy-reduction",
			stream: rec(98, 196, 294, 392),
			expect: map[string]conformanceExpect{
				"golden-comparator": {tripAt: -1, likely: true},
				"golden-monitor":    {tripAt: -1, likely: true},
				"golden-free":       {tripAt: -1, likely: false},
				"ensemble(any)":     {tripAt: -1, likely: true},
				"ensemble(all)":     {tripAt: -1, likely: false},
				"attestation":       {tripAt: 3, likely: true},
			},
		},
		{
			// X teleports outside the build volume at window 2: both the
			// golden reference and machine physics see it, so even the
			// ensemble(all) verdict fires.
			name:   "out-of-volume",
			stream: rec(100, 200, 99000, 400),
			expect: map[string]conformanceExpect{
				"golden-comparator": {tripAt: -1, likely: true},
				"golden-monitor":    {tripAt: 2, likely: true},
				"golden-free":       {tripAt: 2, likely: true},
				"ensemble(any)":     {tripAt: 2, likely: true},
				"ensemble(all)":     {tripAt: 2, likely: true},
				"attestation":       {tripAt: 5, likely: true},
			},
		},
	}

	factories := detectorFactories(t, golden)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for name, c := range factories {
				want, ok := tc.expect[name]
				if !ok {
					t.Fatalf("case %s has no expectation for %s", tc.name, name)
				}
				t.Run(name, func(t *testing.T) {
					d := c.build()
					if d.Name() != name {
						t.Errorf("Name() = %q, want %q", d.Name(), name)
					}
					stream := c.feed(golden, tc.stream)
					tripAt := -1
					for i, tx := range stream {
						v := d.Observe(tx)
						if v.Err != nil {
							t.Fatalf("stream error at %d: %v", i, v.Err)
						}
						if v.Tripped && tripAt < 0 {
							tripAt = i
							if v.Reason() == "" {
								t.Error("tripped verdict has no Reason")
							}
						}
						if !v.Tripped && tripAt >= 0 {
							t.Errorf("verdict un-latched at %d", i)
						}
						// Observe-after-Finalize: Finalize mid-stream must
						// not perturb the detector — the stream continues
						// and the end-of-stream report is unaffected
						// (checked against the uninterrupted replay below).
						if mid := d.Finalize(); mid.Detector != name {
							t.Errorf("mid-stream Finalize report Detector = %q", mid.Detector)
						}
					}
					if tripAt != want.tripAt {
						t.Errorf("tripped at %d, want %d", tripAt, want.tripAt)
					}
					rep := d.Finalize()
					if rep.TrojanLikely != want.likely {
						t.Errorf("TrojanLikely = %v, want %v\n%s", rep.TrojanLikely, want.likely, rep.Format())
					}
					if rep.Detector != name {
						t.Errorf("report Detector = %q, want %q", rep.Detector, name)
					}
					if rep.Tripped != (want.tripAt >= 0) {
						t.Errorf("report Tripped = %v, want %v", rep.Tripped, want.tripAt >= 0)
					}
					// Finalize must be idempotent.
					if again := d.Finalize(); !reflect.DeepEqual(rep, again) {
						t.Error("second Finalize differs from the first")
					}
					// A fresh detector replaying the same stream — without
					// the mid-stream Finalize calls — produces the same
					// full report, proving Finalize never mutated state.
					replayed, err := Replay(&capture.Recording{Transactions: stream}, c.build())
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(replayed, rep) {
						t.Errorf("uninterrupted replay diverges:\n%+v\nvs\n%+v", replayed, rep)
					}
				})
			}
		})
	}
}

func TestEnsembleConstruction(t *testing.T) {
	if _, err := NewEnsemble(VoteAny); err == nil {
		t.Error("empty ensemble accepted")
	}
	if _, err := NewEnsemble(Vote(42), &RuleEngine{limits: DefaultLimits()}); err == nil {
		t.Error("unknown vote rule accepted")
	}
}

func TestEnsemblePropagatesStreamErrors(t *testing.T) {
	m, err := NewMonitor(rec(1000, 2000), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEnsemble(VoteAny, m)
	if err != nil {
		t.Fatal(err)
	}
	if v := e.Observe(capture.Transaction{Index: 7}); v.Err == nil {
		t.Error("member stream error swallowed")
	}
}

func TestEnsembleReportCarriesMembers(t *testing.T) {
	golden := rec(1000, 2000)
	m, _ := NewMonitor(golden, DefaultConfig())
	re, _ := NewRuleEngine(DefaultLimits())
	e, err := NewEnsemble(VoteAny, m, re)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(rec(1000, 2600), e) // +30% on the final window
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sub) != 2 {
		t.Fatalf("Sub = %d reports, want 2", len(rep.Sub))
	}
	if !rep.TrojanLikely {
		t.Error("any-vote ensemble missed the member verdict")
	}
	out := rep.Format()
	for _, want := range []string{"golden-monitor", "golden-free", "Trojan likely!"} {
		if !strings.Contains(out, want) {
			t.Errorf("ensemble Format() missing %q:\n%s", want, out)
		}
	}
}
