package detect

import (
	"testing"

	"offramps/internal/capture"
)

func TestMonitorCleanStream(t *testing.T) {
	g := rec(1000, 2000, 3000)
	m, err := NewMonitor(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range g.Transactions {
		tripped, err := m.Observe(tx)
		if err != nil {
			t.Fatal(err)
		}
		if tripped {
			t.Fatalf("clean stream tripped at %d", tx.Index)
		}
	}
	likely, finals := m.Finish(g.Transactions[2])
	if likely || len(finals) != 0 {
		t.Errorf("clean finish: likely=%v finals=%v", likely, finals)
	}
	if m.Observed() != 3 {
		t.Errorf("Observed = %d", m.Observed())
	}
}

func TestMonitorTripsOnDivergence(t *testing.T) {
	g := rec(1000, 2000, 3000, 4000)
	m, err := NewMonitor(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := rec(1000, 2000, 3600, 4000) // +20% at window 2
	trippedAt := -1
	for i, tx := range s.Transactions {
		tripped, err := m.Observe(tx)
		if err != nil {
			t.Fatal(err)
		}
		if tripped && trippedAt < 0 {
			trippedAt = i
		}
	}
	if trippedAt != 2 {
		t.Fatalf("tripped at %d, want 2 (halt as soon as suspected)", trippedAt)
	}
	if !m.Tripped() || m.TripMismatch() == nil {
		t.Fatal("trip state not recorded")
	}
	if m.TripMismatch().Index != 2 || m.TripMismatch().Column != "X" {
		t.Errorf("TripMismatch = %+v", m.TripMismatch())
	}
}

func TestMonitorStealthyCaughtAtFinish(t *testing.T) {
	g := rec(1000, 2000, 3000)
	m, err := NewMonitor(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := rec(980, 1960, 2940) // 2%: under margin everywhere
	for _, tx := range s.Transactions {
		if tripped, err := m.Observe(tx); err != nil || tripped {
			t.Fatalf("tripped=%v err=%v", tripped, err)
		}
	}
	final, _ := s.Final()
	likely, finals := m.Finish(final)
	if !likely || len(finals) == 0 {
		t.Error("stealthy reduction not caught at finish")
	}
}

func TestMonitorExtraTrailingWindows(t *testing.T) {
	g := rec(1000, 2000)
	m, err := NewMonitor(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The live print holds at the golden final counts past the golden
	// capture's end: not suspicious.
	stream := rec(1000, 2000, 2000, 2000)
	for _, tx := range stream.Transactions {
		if tripped, err := m.Observe(tx); err != nil || tripped {
			t.Fatalf("trailing hold tripped: %v %v", tripped, err)
		}
	}
	// But moving past the end is.
	m2, _ := NewMonitor(g, DefaultConfig())
	stream2 := rec(1000, 2000, 2000, 9000)
	var tripped bool
	for _, tx := range stream2.Transactions {
		var err error
		tripped, err = m2.Observe(tx)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !tripped {
		t.Error("post-end motion not flagged")
	}
}

func TestMonitorIndexDiscipline(t *testing.T) {
	g := rec(1000, 2000)
	m, err := NewMonitor(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe(capture.Transaction{Index: 5}); err == nil {
		t.Error("out-of-order index accepted")
	}
}

func TestMonitorConstruction(t *testing.T) {
	if _, err := NewMonitor(nil, DefaultConfig()); err == nil {
		t.Error("nil golden accepted")
	}
	if _, err := NewMonitor(&capture.Recording{}, DefaultConfig()); err == nil {
		t.Error("empty golden accepted")
	}
	bad := DefaultConfig()
	bad.Margin = -1
	if _, err := NewMonitor(rec(1), bad); err == nil {
		t.Error("bad config accepted")
	}
}

func TestMonitorLargestPercentTracksGuardedDiffs(t *testing.T) {
	g := rec(2, 1000)
	m, err := NewMonitor(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2 vs 4: 100% relative, 2 steps absolute — guarded, but reported.
	if tripped, err := m.Observe(capture.Transaction{Index: 0, X: 4, Y: 8, Z: 100, E: 2}); err != nil || tripped {
		t.Fatalf("guarded diff tripped: %v %v", tripped, err)
	}
	if m.LargestPercent() < 99 {
		t.Errorf("LargestPercent = %v", m.LargestPercent())
	}
}
