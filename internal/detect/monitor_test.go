package detect

import (
	"testing"

	"offramps/internal/capture"
)

func TestMonitorCleanStream(t *testing.T) {
	g := rec(1000, 2000, 3000)
	m, err := NewMonitor(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range g.Transactions {
		v := m.Observe(tx)
		if v.Err != nil {
			t.Fatal(v.Err)
		}
		if v.Tripped {
			t.Fatalf("clean stream tripped at %d", tx.Index)
		}
	}
	rep := m.Finalize()
	if rep.TrojanLikely || len(rep.Final) != 0 {
		t.Errorf("clean finish: likely=%v finals=%v", rep.TrojanLikely, rep.Final)
	}
	if m.Observed() != 3 {
		t.Errorf("Observed = %d", m.Observed())
	}
}

func TestMonitorTripsOnDivergence(t *testing.T) {
	g := rec(1000, 2000, 3000, 4000)
	m, err := NewMonitor(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := rec(1000, 2000, 3600, 4000) // +20% at window 2
	trippedAt := -1
	for i, tx := range s.Transactions {
		v := m.Observe(tx)
		if v.Err != nil {
			t.Fatal(v.Err)
		}
		if v.Tripped && trippedAt < 0 {
			trippedAt = i
		}
	}
	if trippedAt != 2 {
		t.Fatalf("tripped at %d, want 2 (halt as soon as suspected)", trippedAt)
	}
	if !m.Tripped() || m.TripMismatch() == nil {
		t.Fatal("trip state not recorded")
	}
	if m.TripMismatch().Index != 2 || m.TripMismatch().Column != "X" {
		t.Errorf("TripMismatch = %+v", m.TripMismatch())
	}
	rep := m.Finalize()
	if !rep.Tripped || rep.Trip == nil || !rep.TrojanLikely {
		t.Errorf("Finalize lost the trip: %+v", rep)
	}
}

func TestMonitorStealthyCaughtAtFinish(t *testing.T) {
	g := rec(1000, 2000, 3000)
	m, err := NewMonitor(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := rec(980, 1960, 2940) // 2%: under margin everywhere
	for _, tx := range s.Transactions {
		if v := m.Observe(tx); v.Err != nil || v.Tripped {
			t.Fatalf("tripped=%v err=%v", v.Tripped, v.Err)
		}
	}
	rep := m.Finalize()
	if !rep.TrojanLikely || len(rep.Final) == 0 {
		t.Error("stealthy reduction not caught at finish")
	}
}

func TestMonitorExtraTrailingWindows(t *testing.T) {
	g := rec(1000, 2000)
	m, err := NewMonitor(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The live print holds at the golden final counts past the golden
	// capture's end: not suspicious.
	stream := rec(1000, 2000, 2000, 2000)
	for _, tx := range stream.Transactions {
		if v := m.Observe(tx); v.Err != nil || v.Tripped {
			t.Fatalf("trailing hold tripped: %v %v", v.Tripped, v.Err)
		}
	}
	// But moving past the end is.
	m2, _ := NewMonitor(g, DefaultConfig())
	stream2 := rec(1000, 2000, 2000, 9000)
	var tripped bool
	for _, tx := range stream2.Transactions {
		v := m2.Observe(tx)
		if v.Err != nil {
			t.Fatal(v.Err)
		}
		tripped = v.Tripped
	}
	if !tripped {
		t.Error("post-end motion not flagged")
	}
}

func TestMonitorKeepsObservingAfterTrip(t *testing.T) {
	// FlagOnly semantics: the verdict latches at the trip, but the
	// detector keeps consuming the stream so Finalize reports the true
	// final counts and the full tally, not a snapshot frozen at the trip.
	g := rec(1000, 2000, 3000, 4000)
	m, err := NewMonitor(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := rec(1000, 2600, 3000, 4000) // +30% at window 1, clean afterwards
	for _, tx := range s.Transactions {
		if v := m.Observe(tx); v.Err != nil {
			t.Fatal(v.Err)
		}
	}
	rep := m.Finalize()
	if !rep.Tripped || rep.Trip == nil || rep.Trip.Index != 1 {
		t.Fatalf("trip not latched at window 1: %+v", rep)
	}
	if rep.NumCompared != 4 {
		t.Errorf("NumCompared = %d, want 4 (stream fully consumed)", rep.NumCompared)
	}
	if rep.LengthDelta != 0 {
		t.Errorf("LengthDelta = %d, want 0", rep.LengthDelta)
	}
	// The final counts match the golden, so no Final mismatches — the
	// 0%-margin check must run against the true last transaction.
	if len(rep.Final) != 0 {
		t.Errorf("Final = %v, want none", rep.Final)
	}
}

func TestMonitorIndexDiscipline(t *testing.T) {
	g := rec(1000, 2000)
	m, err := NewMonitor(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Observe(capture.Transaction{Index: 5}); v.Err == nil {
		t.Error("out-of-order index accepted")
	}
}

func TestMonitorConstruction(t *testing.T) {
	if _, err := NewMonitor(nil, DefaultConfig()); err == nil {
		t.Error("nil golden accepted")
	}
	if _, err := NewMonitor(&capture.Recording{}, DefaultConfig()); err == nil {
		t.Error("empty golden accepted")
	}
	bad := DefaultConfig()
	bad.Margin = -1
	if _, err := NewMonitor(rec(1), bad); err == nil {
		t.Error("bad config accepted")
	}
}

func TestMonitorLargestPercentTracksGuardedDiffs(t *testing.T) {
	g := rec(2, 1000)
	m, err := NewMonitor(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2 vs 4: 100% relative, 2 steps absolute — guarded, but reported.
	if v := m.Observe(capture.Transaction{Index: 0, X: 4, Y: 8, Z: 100, E: 2}); v.Err != nil || v.Tripped {
		t.Fatalf("guarded diff tripped: %v %v", v.Tripped, v.Err)
	}
	if m.LargestPercent() < 99 {
		t.Errorf("LargestPercent = %v", m.LargestPercent())
	}
}
