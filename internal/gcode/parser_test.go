package gcode

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func mustParseLine(t *testing.T, s string) Command {
	t.Helper()
	c, err := ParseLine(s, 1)
	if err != nil {
		t.Fatalf("ParseLine(%q): %v", s, err)
	}
	return c
}

func TestParseLineBasic(t *testing.T) {
	c := mustParseLine(t, "G1 X10.5 Y-3 E0.042 F1800")
	if !c.Is("G1") {
		t.Fatalf("Code = %q", c.Code)
	}
	cases := []struct {
		letter byte
		want   float64
	}{{'X', 10.5}, {'Y', -3}, {'E', 0.042}, {'F', 1800}}
	for _, tc := range cases {
		v, ok := c.Float(tc.letter)
		if !ok || v != tc.want {
			t.Errorf("Float(%c) = %v,%v want %v", tc.letter, v, ok, tc.want)
		}
	}
}

func TestParseLinePackedWords(t *testing.T) {
	c := mustParseLine(t, "G1X10Y20E1.5")
	if !c.Is("G1") || len(c.Words) != 3 {
		t.Fatalf("packed parse = %+v", c)
	}
	if v, _ := c.Float('Y'); v != 20 {
		t.Errorf("Y = %v", v)
	}
}

func TestParseLineLowerCase(t *testing.T) {
	c := mustParseLine(t, "g28 x y")
	if !c.Is("G28") {
		t.Fatalf("Code = %q", c.Code)
	}
	if !c.Has('X') || !c.Has('Y') || c.Has('Z') {
		t.Errorf("bare axis words = %+v", c.Words)
	}
	if _, ok := c.Float('X'); ok {
		t.Error("bare X reported a value")
	}
}

func TestParseLineComments(t *testing.T) {
	c := mustParseLine(t, "M104 S210 ; set hotend")
	if !c.Is("M104") || c.Comment != " set hotend" {
		t.Errorf("parse = %+v", c)
	}
	c = mustParseLine(t, ";LAYER:3")
	if !c.Empty() || c.Comment != "LAYER:3" {
		t.Errorf("comment-only = %+v", c)
	}
	c = mustParseLine(t, "")
	if !c.Empty() || c.Comment != "" {
		t.Errorf("blank = %+v", c)
	}
	c = mustParseLine(t, "   \t  ")
	if !c.Empty() {
		t.Errorf("whitespace-only = %+v", c)
	}
}

func TestParseLineLineNumberAndChecksum(t *testing.T) {
	c := mustParseLine(t, "N42 G1 X5 *107")
	if !c.Is("G1") || len(c.Words) != 1 {
		t.Errorf("N/checksum stripped parse = %+v", c)
	}
}

func TestParseLineCRLF(t *testing.T) {
	c := mustParseLine(t, "G28\r")
	if !c.Is("G28") {
		t.Errorf("CRLF parse = %+v", c)
	}
}

func TestParseLineToolChange(t *testing.T) {
	c := mustParseLine(t, "T0")
	if !c.Is("T0") {
		t.Errorf("tool change parse = %+v", c)
	}
}

func TestParseLineErrors(t *testing.T) {
	cases := []string{
		"X10 Y20",      // no command letter
		"G X10",        // bare command
		"G1.5 X10",     // non-integer command number
		"G-1",          // negative command number
		"G1 X10 #5",    // junk character
		"G1 X1.2.3",    // malformed number
		"(old school)", // parenthesized comment unsupported
	}
	for _, src := range cases {
		_, err := ParseLine(src, 7)
		if err == nil {
			t.Errorf("ParseLine(%q) succeeded, want error", src)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("ParseLine(%q) error type %T", src, err)
			continue
		}
		if pe.Line != 7 {
			t.Errorf("ParseLine(%q) line = %d, want 7", src, pe.Line)
		}
		if !strings.Contains(pe.Error(), "line 7") {
			t.Errorf("error text %q missing line", pe.Error())
		}
	}
}

func TestParseProgram(t *testing.T) {
	src := `; test part
G28
G90
M104 S210
G1 X10 Y10 F3000
G1 X20 E1.0
`
	p, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 6 {
		t.Fatalf("parsed %d lines, want 6", len(p))
	}
	if got := len(p.Commands()); got != 5 {
		t.Errorf("Commands() = %d, want 5", got)
	}
	if p.Count("G1") != 2 {
		t.Errorf("Count(G1) = %d, want 2", p.Count("G1"))
	}
}

func TestParseProgramPropagatesError(t *testing.T) {
	_, err := ParseString("G28\nBOGUS LINE\n")
	if err == nil {
		t.Fatal("want parse error")
	}
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Line != 2 {
		t.Errorf("err = %v", err)
	}
}

// Property: String() of a parsed command reparses to the same command
// (round-trip stability), for synthesized numeric commands.
func TestRoundTripProperty(t *testing.T) {
	f := func(x, y, e int16, f16 uint16) bool {
		orig := Synthesize("G1",
			P('X', float64(x)/100),
			P('Y', float64(y)/100),
			P('E', float64(e)/1000),
			P('F', float64(f16%10000)),
		)
		re, err := ParseLine(orig.String(), 1)
		if err != nil {
			return false
		}
		if re.Code != orig.Code || len(re.Words) != len(orig.Words) {
			return false
		}
		for i := range re.Words {
			if re.Words[i].Letter != orig.Words[i].Letter {
				return false
			}
			diff := re.Words[i].Value - orig.Words[i].Value
			if diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommandStringForms(t *testing.T) {
	cases := []struct {
		in   Command
		want string
	}{
		{Synthesize("G28"), "G28"},
		{Synthesize("G1", P('X', 10), P('E', 0.5)), "G1 X10 E0.5"},
		{Comment("hello"), ";hello"},
		{Command{Code: "M107", Comment: "fan off"}, "M107 ;fan off"},
		{Command{Code: "G28", Words: []Word{{Letter: 'X', Bare: true}}}, "G28 X"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestFormatNumberTrimming(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{10, "10"}, {10.5, "10.5"}, {0.042, "0.042"}, {-3, "-3"},
		{0.100004, "0.1"}, {1e15, "1000000000000000"},
	}
	for _, tc := range cases {
		if got := formatNumber(tc.in); got != tc.want {
			t.Errorf("formatNumber(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestWithWordAndWithoutWord(t *testing.T) {
	orig := Synthesize("G1", P('X', 10), P('E', 2))
	mod := orig.WithWord('E', 1)
	if v, _ := mod.Float('E'); v != 1 {
		t.Errorf("WithWord replace: E = %v", v)
	}
	if v, _ := orig.Float('E'); v != 2 {
		t.Error("WithWord mutated the receiver")
	}
	mod2 := orig.WithWord('F', 1800)
	if v, _ := mod2.Float('F'); v != 1800 {
		t.Errorf("WithWord append: F = %v", v)
	}
	if len(orig.Words) != 2 {
		t.Error("WithWord append mutated receiver length")
	}
	del := orig.WithoutWord('E')
	if del.Has('E') || !del.Has('X') {
		t.Errorf("WithoutWord = %+v", del.Words)
	}
	if !orig.Has('E') {
		t.Error("WithoutWord mutated the receiver")
	}
}

func TestProgramClone(t *testing.T) {
	p, err := ParseString("G1 X1 E1\nG1 X2 E2\n")
	if err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	c[0].Words[0].Value = 99
	if p[0].Words[0].Value != 1 {
		t.Error("Clone shares word storage with original")
	}
}

func TestFloatDefault(t *testing.T) {
	c := Synthesize("M106", P('S', 128))
	if got := c.FloatDefault('S', 255); got != 128 {
		t.Errorf("FloatDefault present = %v", got)
	}
	if got := c.FloatDefault('P', 7); got != 7 {
		t.Errorf("FloatDefault absent = %v", got)
	}
}
