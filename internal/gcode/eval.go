package gcode

import (
	"fmt"
	"math"
)

// Position is a logical machine position in millimetres. E is cumulative
// filament length in the current logical frame (G92 E0 resets it, as
// slicers do at every retraction block or layer).
type Position struct {
	X, Y, Z, E float64
}

// Sub returns p - q componentwise.
func (p Position) Sub(q Position) Position {
	return Position{p.X - q.X, p.Y - q.Y, p.Z - q.Z, p.E - q.E}
}

// XYDistance returns the Euclidean length of the XY projection of p-q.
func (p Position) XYDistance(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Distance returns the Euclidean XYZ distance between p and q.
func (p Position) Distance(q Position) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Move is one linear motion extracted from a program: the resolved source
// and destination of a G0/G1 after modal-state tracking.
type Move struct {
	From, To Position
	Feedrate float64 // mm/min
	Rapid    bool    // true for G0
	Line     int     // source line of the originating command
}

// Extrusion returns the filament length fed during the move (positive) or
// retracted (negative).
func (m Move) Extrusion() float64 { return m.To.E - m.From.E }

// IsTravel reports whether the move extrudes nothing (|ΔE| < 1 nm of
// filament — slicers emit exact zeros but floating error is cheap to
// tolerate).
func (m Move) IsTravel() bool { return math.Abs(m.Extrusion()) < 1e-6 }

// IsPrinting reports whether the move deposits material while moving in XY.
func (m Move) IsPrinting() bool {
	return m.Extrusion() > 1e-6 && m.From.XYDistance(m.To) > 1e-6
}

// State is the modal interpreter state of a Marlin-class machine: current
// logical position, positioning modes, and feedrate. The zero value is not
// ready; use NewState, which matches Marlin's power-on defaults (absolute
// XYZ and E, feedrate unset).
type State struct {
	Pos         Position
	Feedrate    float64 // mm/min, last F word seen
	AbsoluteXYZ bool    // G90 (default) vs G91
	AbsoluteE   bool    // M82 (default) vs M83
	Homed       bool    // set by G28
}

// NewState returns Marlin power-on modal defaults.
func NewState() *State {
	return &State{AbsoluteXYZ: true, AbsoluteE: true}
}

// Apply executes one command against the modal state. If the command
// produces motion, the resolved Move and true are returned. Commands the
// evaluator does not model (temperatures, fan, etc.) only update no state
// and return false — the physical semantics live in the firmware twin; this
// evaluator cares about geometry only.
func (s *State) Apply(c Command) (Move, bool) {
	switch c.Code {
	case "G0", "G1":
		from := s.Pos
		to := from
		if v, ok := c.Float('X'); ok {
			if s.AbsoluteXYZ {
				to.X = v
			} else {
				to.X += v
			}
		}
		if v, ok := c.Float('Y'); ok {
			if s.AbsoluteXYZ {
				to.Y = v
			} else {
				to.Y += v
			}
		}
		if v, ok := c.Float('Z'); ok {
			if s.AbsoluteXYZ {
				to.Z = v
			} else {
				to.Z += v
			}
		}
		if v, ok := c.Float('E'); ok {
			if s.AbsoluteE {
				to.E = v
			} else {
				to.E += v
			}
		}
		if v, ok := c.Float('F'); ok {
			s.Feedrate = v
		}
		s.Pos = to
		if to == from {
			return Move{}, false // feedrate-only G1
		}
		return Move{From: from, To: to, Feedrate: s.Feedrate, Rapid: c.Is("G0"), Line: c.Line}, true
	case "G28":
		// Homing moves the named axes (or all axes) to their origin.
		all := !c.Has('X') && !c.Has('Y') && !c.Has('Z')
		if all || c.Has('X') {
			s.Pos.X = 0
		}
		if all || c.Has('Y') {
			s.Pos.Y = 0
		}
		if all || c.Has('Z') {
			s.Pos.Z = 0
		}
		s.Homed = true
	case "G90":
		s.AbsoluteXYZ = true
		s.AbsoluteE = true // Marlin: G90 also sets E absolute unless M83 follows
	case "G91":
		s.AbsoluteXYZ = false
		s.AbsoluteE = false
	case "G92":
		if v, ok := c.Float('X'); ok {
			s.Pos.X = v
		}
		if v, ok := c.Float('Y'); ok {
			s.Pos.Y = v
		}
		if v, ok := c.Float('Z'); ok {
			s.Pos.Z = v
		}
		if v, ok := c.Float('E'); ok {
			s.Pos.E = v
		}
	case "M82":
		s.AbsoluteE = true
	case "M83":
		s.AbsoluteE = false
	}
	return Move{}, false
}

// ExtractMoves runs the program through a fresh modal state and returns
// every motion it produces, in order.
func ExtractMoves(p Program) []Move {
	st := NewState()
	var moves []Move
	for _, c := range p {
		if m, ok := st.Apply(c); ok {
			moves = append(moves, m)
		}
	}
	return moves
}

// BoundingBox is an axis-aligned extent of printed (extruding) moves.
type BoundingBox struct {
	MinX, MinY, MinZ float64
	MaxX, MaxY, MaxZ float64
	set              bool
}

// Extend grows the box to include p.
func (b *BoundingBox) Extend(p Position) {
	if !b.set {
		b.MinX, b.MaxX = p.X, p.X
		b.MinY, b.MaxY = p.Y, p.Y
		b.MinZ, b.MaxZ = p.Z, p.Z
		b.set = true
		return
	}
	b.MinX = math.Min(b.MinX, p.X)
	b.MaxX = math.Max(b.MaxX, p.X)
	b.MinY = math.Min(b.MinY, p.Y)
	b.MaxY = math.Max(b.MaxY, p.Y)
	b.MinZ = math.Min(b.MinZ, p.Z)
	b.MaxZ = math.Max(b.MaxZ, p.Z)
}

// Valid reports whether the box has been extended at least once.
func (b BoundingBox) Valid() bool { return b.set }

// SizeX returns the X extent.
func (b BoundingBox) SizeX() float64 { return b.MaxX - b.MinX }

// SizeY returns the Y extent.
func (b BoundingBox) SizeY() float64 { return b.MaxY - b.MinY }

// SizeZ returns the Z extent.
func (b BoundingBox) SizeZ() float64 { return b.MaxZ - b.MinZ }

// Stats summarizes the geometric content of a program.
type Stats struct {
	Commands       int     // non-empty commands
	Moves          int     // motion-producing G0/G1
	PrintingMoves  int     // moves that extrude while travelling in XY
	TravelMoves    int     // non-extruding moves
	Retractions    int     // moves with negative extrusion
	PrintDistance  float64 // mm of extruding XY travel
	TravelDistance float64 // mm of non-extruding travel
	Filament       float64 // mm of filament fed (positive extrusion only)
	NetFilament    float64 // mm of filament net of retractions — material deposited
	Layers         int     // distinct printing Z levels
	Bounds         BoundingBox
	TimeEstimate   float64 // seconds at commanded feedrates
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%d cmds, %d moves (%d printing, %d travel), %.1f mm filament, %d layers, %.0f s",
		s.Commands, s.Moves, s.PrintingMoves, s.TravelMoves, s.Filament, s.Layers, s.TimeEstimate)
}

// ComputeStats evaluates the program and summarizes it.
func ComputeStats(p Program) Stats {
	var st Stats
	layers := make(map[float64]struct{})
	for _, c := range p {
		if !c.Empty() {
			st.Commands++
		}
	}
	for _, m := range ExtractMoves(p) {
		st.Moves++
		d := m.From.Distance(m.To)
		e := m.Extrusion()
		switch {
		case m.IsPrinting():
			st.PrintingMoves++
			st.PrintDistance += m.From.XYDistance(m.To)
			layers[m.To.Z] = struct{}{}
		case e < -1e-6:
			st.Retractions++
		default:
			st.TravelMoves++
			st.TravelDistance += d
		}
		if e > 0 {
			st.Filament += e
		}
		st.NetFilament += e
		if m.IsPrinting() {
			st.Bounds.Extend(m.From)
			st.Bounds.Extend(m.To)
		}
		if m.Feedrate > 0 {
			dist := d
			if dist == 0 {
				dist = math.Abs(e)
			}
			st.TimeEstimate += dist / (m.Feedrate / 60)
		}
	}
	st.Layers = len(layers)
	return st
}
