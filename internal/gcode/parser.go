package gcode

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseError describes a malformed G-code line. Parsing is strict: a
// security platform must not silently paper over bytes it does not
// understand, because "bytes the tool ignored" is exactly where a trojan
// hides.
type ParseError struct {
	Line int    // 1-based line number
	Text string // offending source text
	Msg  string // human-readable description
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("gcode: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// Parse reads an entire G-code program. Blank and comment-only lines are
// preserved (they carry layer markers like ";LAYER:12" that the analysis
// tooling uses).
func Parse(r io.Reader) (Program, error) {
	var prog Program
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		cmd, err := ParseLine(sc.Text(), line)
		if err != nil {
			return nil, err
		}
		prog = append(prog, cmd)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gcode: read: %w", err)
	}
	return prog, nil
}

// ParseString parses a program held in a string.
func ParseString(s string) (Program, error) {
	return Parse(strings.NewReader(s))
}

// ParseLine parses one line of G-code. lineNo is recorded in the returned
// command for error reporting.
func ParseLine(text string, lineNo int) (Command, error) {
	cmd := Command{Line: lineNo}

	// Split off the comment. Marlin also supports parenthesized comments,
	// but no slicer in the paper's toolchain emits them; we accept only
	// the ';' form and reject '(' as malformed.
	body := text
	if i := strings.IndexByte(text, ';'); i >= 0 {
		cmd.Comment = strings.TrimRight(text[i+1:], " \t\r")
		body = text[:i]
	}
	body = strings.TrimSpace(strings.TrimSuffix(body, "\r"))
	if body == "" {
		return cmd, nil
	}

	fields, err := splitWords(body)
	if err != nil {
		return Command{}, &ParseError{Line: lineNo, Text: text, Msg: err.Error()}
	}

	// Optional line number word (N...) and checksum (*...) per RepRap
	// protocol; Repetier Host adds them on serial streams.
	if len(fields) > 0 && fields[0].Letter == 'N' {
		fields = fields[1:]
	}
	for len(fields) > 0 && fields[len(fields)-1].Letter == '*' {
		fields = fields[:len(fields)-1]
	}
	if len(fields) == 0 {
		return cmd, nil
	}

	head := fields[0]
	if head.Letter != 'G' && head.Letter != 'M' && head.Letter != 'T' {
		return Command{}, &ParseError{Line: lineNo, Text: text,
			Msg: fmt.Sprintf("command must start with G, M, or T, got %q", string(head.Letter))}
	}
	if head.Bare {
		return Command{}, &ParseError{Line: lineNo, Text: text, Msg: "command letter without number"}
	}
	if head.Value != float64(int64(head.Value)) || head.Value < 0 {
		return Command{}, &ParseError{Line: lineNo, Text: text,
			Msg: fmt.Sprintf("command number must be a non-negative integer, got %v", head.Value)}
	}
	cmd.Code = fmt.Sprintf("%c%d", head.Letter, int64(head.Value))
	cmd.Words = fields[1:]
	if len(cmd.Words) == 0 {
		cmd.Words = nil
	}
	return cmd, nil
}

// splitWords tokenizes a comment-free G-code body into words. Words may be
// space-separated ("G1 X10 Y5") or packed ("G1X10Y5") — both appear in the
// wild.
func splitWords(body string) ([]Word, error) {
	var words []Word
	i := 0
	for i < len(body) {
		ch := body[i]
		switch {
		case ch == ' ' || ch == '\t':
			i++
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch == '*':
			letter := ch
			if letter >= 'a' && letter <= 'z' {
				letter -= 'a' - 'A'
			}
			i++
			start := i
			for i < len(body) && isNumberByte(body[i]) {
				i++
			}
			if start == i {
				words = append(words, Word{Letter: letter, Bare: true})
				continue
			}
			v, err := strconv.ParseFloat(body[start:i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad number %q after %q", body[start:i], string(letter))
			}
			words = append(words, Word{Letter: letter, Value: v})
		default:
			return nil, fmt.Errorf("unexpected character %q", string(ch))
		}
	}
	return words, nil
}

func isNumberByte(b byte) bool {
	return (b >= '0' && b <= '9') || b == '.' || b == '-' || b == '+'
}
