// Package gcode implements parsing, evaluation, and serialization of the
// RepRap-dialect G-code understood by Marlin. It is the lingua franca of
// the whole reproduction: the slicer emits it, the Flaw3D trojanizer
// rewrites it, and the firmware twin executes it.
//
// The dialect covers the command vocabulary the paper's toolchain (Cura →
// Repetier Host → Marlin) exercises: motion (G0/G1), homing (G28), dwell
// (G4), positioning modes (G90/G91/G92, M82/M83), temperature (M104/M109/
// M140/M190), fan (M106/M107), stepper power (M17/M84), and a handful of
// no-op metadata codes slicers routinely emit (M105, M115, M73...).
package gcode

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Word is a single letter/value parameter, e.g. X102.5 or S255.
type Word struct {
	Letter byte    // upper-case parameter letter
	Value  float64 // numeric value; 0 if the letter appeared bare (e.g. "G28 X")
	Bare   bool    // true when the letter carried no number
}

// String renders the word in canonical form. Bare words render as the
// letter alone. Values are trimmed to at most 5 decimal places, which is
// finer than any slicer emits and lossless for step-resolution coordinates.
func (w Word) String() string {
	if w.Bare {
		return string(w.Letter)
	}
	return string(w.Letter) + formatNumber(w.Value)
}

// formatNumber renders a float the way slicers do: no exponent, trailing
// zeros trimmed, integers without a decimal point.
func formatNumber(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	s := strconv.FormatFloat(v, 'f', 5, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}

// Command is one parsed G-code line: a code word (e.g. "G1") plus parameter
// words and an optional trailing comment. A line that contains only a
// comment or is blank parses to a Command with empty Code.
type Command struct {
	Code    string // e.g. "G1", "M104"; empty for comment-only lines
	Words   []Word // parameters in source order
	Comment string // text after ';' without the semicolon, trimmed
	Line    int    // 1-based source line number, 0 if synthesized
}

// Empty reports whether the command carries no code (blank/comment line).
func (c Command) Empty() bool { return c.Code == "" }

// Is reports whether the command's code equals code (case-sensitive; codes
// are canonicalized to upper case by the parser).
func (c Command) Is(code string) bool { return c.Code == code }

// Has reports whether a parameter with the given letter is present.
func (c Command) Has(letter byte) bool {
	for _, w := range c.Words {
		if w.Letter == letter {
			return true
		}
	}
	return false
}

// Float returns the value of the parameter with the given letter, and
// whether it was present with a value. Bare words report (0, false).
func (c Command) Float(letter byte) (float64, bool) {
	for _, w := range c.Words {
		if w.Letter == letter {
			if w.Bare {
				return 0, false
			}
			return w.Value, true
		}
	}
	return 0, false
}

// FloatDefault returns the parameter value or def when absent or bare.
func (c Command) FloatDefault(letter byte, def float64) float64 {
	if v, ok := c.Float(letter); ok {
		return v
	}
	return def
}

// WithWord returns a copy of the command with the parameter for letter set
// to value, replacing an existing word or appending a new one. The receiver
// is not modified: transformation passes (the Flaw3D trojanizer) depend on
// value semantics here.
func (c Command) WithWord(letter byte, value float64) Command {
	out := c
	out.Words = make([]Word, len(c.Words), len(c.Words)+1)
	copy(out.Words, c.Words)
	for i, w := range out.Words {
		if w.Letter == letter {
			out.Words[i] = Word{Letter: letter, Value: value}
			return out
		}
	}
	out.Words = append(out.Words, Word{Letter: letter, Value: value})
	return out
}

// WithoutWord returns a copy of the command with any parameter for letter
// removed.
func (c Command) WithoutWord(letter byte) Command {
	out := c
	out.Words = make([]Word, 0, len(c.Words))
	for _, w := range c.Words {
		if w.Letter != letter {
			out.Words = append(out.Words, w)
		}
	}
	return out
}

// String renders the command as one G-code line (no trailing newline).
func (c Command) String() string {
	var sb strings.Builder
	if c.Code != "" {
		sb.WriteString(c.Code)
		for _, w := range c.Words {
			sb.WriteByte(' ')
			sb.WriteString(w.String())
		}
	}
	if c.Comment != "" {
		if c.Code != "" {
			sb.WriteByte(' ')
		}
		sb.WriteByte(';')
		sb.WriteString(c.Comment)
	}
	return sb.String()
}

// Program is a sequence of commands — one sliced part.
type Program []Command

// String renders the program as G-code text, one command per line.
func (p Program) String() string {
	var sb strings.Builder
	for _, c := range p {
		sb.WriteString(c.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Commands returns only the non-empty commands (drops blank/comment lines).
func (p Program) Commands() Program {
	out := make(Program, 0, len(p))
	for _, c := range p {
		if !c.Empty() {
			out = append(out, c)
		}
	}
	return out
}

// Count reports how many commands carry the given code.
func (p Program) Count(code string) int {
	n := 0
	for _, c := range p {
		if c.Is(code) {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the program. Transformation passes operate
// on clones so the original slice stays a valid golden reference.
func (p Program) Clone() Program {
	out := make(Program, len(p))
	for i, c := range p {
		out[i] = c
		out[i].Words = append([]Word(nil), c.Words...)
	}
	return out
}

// Synthesize builds a command from a code and letter/value pairs, for
// programmatic G-code generation (the slicer).
func Synthesize(code string, params ...Param) Command {
	c := Command{Code: code, Words: make([]Word, len(params))}
	for i, p := range params {
		c.Words[i] = Word{Letter: p.Letter, Value: p.Value}
	}
	return c
}

// Param is a letter/value pair for Synthesize.
type Param struct {
	Letter byte
	Value  float64
}

// P builds a Param; gcode.P('X', 10) reads like the emitted word X10.
func P(letter byte, value float64) Param { return Param{Letter: letter, Value: value} }

// Comment builds a comment-only command.
func Comment(text string) Command { return Command{Comment: text} }

var _ fmt.Stringer = Command{}
var _ fmt.Stringer = Word{}
