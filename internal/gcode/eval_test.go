package gcode

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStateAbsoluteMoves(t *testing.T) {
	st := NewState()
	m, ok := st.Apply(mustParseLine(t, "G1 X10 Y20 F3000"))
	if !ok {
		t.Fatal("move not produced")
	}
	if m.From != (Position{}) || m.To != (Position{X: 10, Y: 20}) {
		t.Errorf("move = %+v", m)
	}
	if m.Feedrate != 3000 {
		t.Errorf("feedrate = %v", m.Feedrate)
	}
	m, ok = st.Apply(mustParseLine(t, "G1 X15 E0.8"))
	if !ok || m.From.X != 10 || m.To.X != 15 || m.To.E != 0.8 {
		t.Errorf("second move = %+v ok=%v", m, ok)
	}
	if m.Feedrate != 3000 {
		t.Error("modal feedrate not carried")
	}
}

func TestStateRelativeMoves(t *testing.T) {
	st := NewState()
	st.Apply(mustParseLine(t, "G91"))
	st.Apply(mustParseLine(t, "G1 X5"))
	st.Apply(mustParseLine(t, "G1 X5 E1"))
	if st.Pos.X != 10 || st.Pos.E != 1 {
		t.Errorf("pos after relative = %+v", st.Pos)
	}
	st.Apply(mustParseLine(t, "G1 E1"))
	if st.Pos.E != 2 {
		t.Errorf("relative E = %v", st.Pos.E)
	}
}

func TestStateM83RelativeExtrusionOnly(t *testing.T) {
	st := NewState()
	st.Apply(mustParseLine(t, "M83"))
	st.Apply(mustParseLine(t, "G1 X10 E1"))
	st.Apply(mustParseLine(t, "G1 X20 E1"))
	if st.Pos.E != 2 {
		t.Errorf("E = %v, want 2 (relative)", st.Pos.E)
	}
	if st.Pos.X != 20 {
		t.Errorf("X = %v, want 20 (absolute)", st.Pos.X)
	}
	st.Apply(mustParseLine(t, "M82"))
	st.Apply(mustParseLine(t, "G1 X30 E5"))
	if st.Pos.E != 5 {
		t.Errorf("E after M82 = %v, want 5", st.Pos.E)
	}
}

func TestStateG92(t *testing.T) {
	st := NewState()
	st.Apply(mustParseLine(t, "G1 X10 E3"))
	st.Apply(mustParseLine(t, "G92 E0"))
	if st.Pos.E != 0 || st.Pos.X != 10 {
		t.Errorf("after G92 E0: %+v", st.Pos)
	}
	m, ok := st.Apply(mustParseLine(t, "G1 X20 E1"))
	if !ok || math.Abs(m.Extrusion()-1) > 1e-12 {
		t.Errorf("extrusion after G92 = %v", m.Extrusion())
	}
}

func TestStateG28(t *testing.T) {
	st := NewState()
	st.Apply(mustParseLine(t, "G1 X10 Y10 Z5"))
	st.Apply(mustParseLine(t, "G28 X"))
	if st.Pos.X != 0 || st.Pos.Y != 10 || st.Pos.Z != 5 {
		t.Errorf("partial home: %+v", st.Pos)
	}
	if !st.Homed {
		t.Error("Homed not set")
	}
	st.Apply(mustParseLine(t, "G28"))
	if st.Pos != (Position{}) {
		t.Errorf("full home: %+v", st.Pos)
	}
}

func TestFeedrateOnlyG1ProducesNoMove(t *testing.T) {
	st := NewState()
	if _, ok := st.Apply(mustParseLine(t, "G1 F4800")); ok {
		t.Error("feedrate-only G1 produced a move")
	}
	if st.Feedrate != 4800 {
		t.Errorf("feedrate = %v", st.Feedrate)
	}
}

func TestMovePredicates(t *testing.T) {
	travel := Move{From: Position{}, To: Position{X: 10}}
	if !travel.IsTravel() || travel.IsPrinting() {
		t.Error("travel move misclassified")
	}
	printing := Move{From: Position{}, To: Position{X: 10, E: 0.5}}
	if printing.IsTravel() || !printing.IsPrinting() {
		t.Error("printing move misclassified")
	}
	retract := Move{From: Position{E: 1}, To: Position{E: 0.2}}
	if retract.Extrusion() > 0 || retract.IsPrinting() {
		t.Error("retraction misclassified")
	}
	zhop := Move{From: Position{}, To: Position{Z: 0.4, E: 0.1}}
	if zhop.IsPrinting() {
		t.Error("pure-Z extrusion counted as printing")
	}
}

func TestExtractMoves(t *testing.T) {
	p, err := ParseString(`G28
G1 X10 Y0 F3000
G1 X10 Y10 E0.5
G92 E0
G1 X0 Y10 E0.5
`)
	if err != nil {
		t.Fatal(err)
	}
	moves := ExtractMoves(p)
	if len(moves) != 3 {
		t.Fatalf("got %d moves, want 3", len(moves))
	}
	if !moves[0].IsTravel() || !moves[1].IsPrinting() || !moves[2].IsPrinting() {
		t.Errorf("classification: %+v", moves)
	}
	if e := moves[2].Extrusion(); math.Abs(e-0.5) > 1e-12 {
		t.Errorf("post-G92 extrusion = %v", e)
	}
}

func TestComputeStats(t *testing.T) {
	p, err := ParseString(`; header
G28
G90
G1 Z0.2 F1200
G1 X0 Y0 F3000
G1 X10 Y0 E0.4
G1 X10 Y10 E0.8
G1 E0.3 F1800
G1 X0 Y10 F4800
G1 Z0.4
G1 X0 Y0 E1.2 F1200
`)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(p)
	// "G1 X0 Y0 F3000" from the origin is a no-op and produces no move.
	if s.Moves != 7 {
		t.Errorf("Moves = %d, want 7", s.Moves)
	}
	if s.PrintingMoves != 3 {
		t.Errorf("PrintingMoves = %d, want 3", s.PrintingMoves)
	}
	if s.Retractions != 1 {
		t.Errorf("Retractions = %d, want 1", s.Retractions)
	}
	if s.Layers != 2 {
		t.Errorf("Layers = %d, want 2", s.Layers)
	}
	if math.Abs(s.PrintDistance-30) > 1e-9 {
		t.Errorf("PrintDistance = %v, want 30", s.PrintDistance)
	}
	// Filament: 0.4 + 0.4 + (1.2-0.3) = 1.7.
	if math.Abs(s.Filament-1.7) > 1e-9 {
		t.Errorf("Filament = %v, want 1.7", s.Filament)
	}
	if !s.Bounds.Valid() || s.Bounds.SizeX() != 10 || s.Bounds.SizeY() != 10 {
		t.Errorf("Bounds = %+v", s.Bounds)
	}
	if s.TimeEstimate <= 0 {
		t.Errorf("TimeEstimate = %v", s.TimeEstimate)
	}
	if !strings.Contains(s.String(), "filament") {
		t.Errorf("Stats.String() = %q", s.String())
	}
}

func TestBoundingBox(t *testing.T) {
	var b BoundingBox
	if b.Valid() {
		t.Error("zero box valid")
	}
	b.Extend(Position{X: 1, Y: 2, Z: 3})
	b.Extend(Position{X: -1, Y: 5, Z: 3})
	if b.MinX != -1 || b.MaxX != 1 || b.SizeY() != 3 || b.SizeZ() != 0 {
		t.Errorf("box = %+v", b)
	}
}

// Property: applying a program in absolute mode leaves the state at the
// last commanded coordinates regardless of intermediate moves.
func TestAbsoluteConvergenceProperty(t *testing.T) {
	f := func(coords []uint16) bool {
		st := NewState()
		var lastX float64
		for _, c := range coords {
			lastX = float64(c % 200)
			st.Apply(Synthesize("G1", P('X', lastX)))
		}
		return len(coords) == 0 || st.Pos.X == lastX
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for relative E mode, total E equals the sum of the increments.
func TestRelativeESumProperty(t *testing.T) {
	f := func(incs []int8) bool {
		st := NewState()
		st.Apply(mustParseLine(nil2(t), "M83"))
		var sum float64
		for _, inc := range incs {
			v := float64(inc) / 10
			sum += v
			st.Apply(Synthesize("G1", P('E', v)))
		}
		return math.Abs(st.Pos.E-sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// nil2 lets the property test reuse mustParseLine's helper signature.
func nil2(t *testing.T) *testing.T { return t }

func TestPositionMath(t *testing.T) {
	p := Position{X: 3, Y: 4, Z: 12, E: 1}
	q := Position{}
	if d := p.XYDistance(q); d != 5 {
		t.Errorf("XYDistance = %v, want 5", d)
	}
	if d := p.Distance(q); d != 13 {
		t.Errorf("Distance = %v, want 13", d)
	}
	if diff := p.Sub(q); diff != p {
		t.Errorf("Sub = %+v", diff)
	}
}
