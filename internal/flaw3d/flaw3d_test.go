package flaw3d

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"offramps/internal/gcode"
)

// samplePrint is a two-layer miniature print with retraction and G92
// resets, exercising the state the transforms must preserve.
const samplePrint = `G28
G90
M82
G92 E0
G1 X10 Y10 F3000
G1 X20 Y10 E0.5 F1200
G1 X20 Y20 E1.0
G1 E0.2 F1800
G0 X40 Y40 F6000
G1 E1.0 F1800
G1 X50 Y40 E1.5 F1200
G92 E0
G1 X50 Y50 E0.5 F1200
G1 X40 Y50 E1.0
M84
`

func parse(t *testing.T, src string) gcode.Program {
	t.Helper()
	p, err := gcode.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReduceScalesNetFilament(t *testing.T) {
	prog := parse(t, samplePrint)
	for _, factor := range []float64{0.5, 0.85, 0.9, 0.98} {
		out, err := Reduce(prog, factor)
		if err != nil {
			t.Fatal(err)
		}
		// Positive printing extrusion in the sample: layer 1 = 0.5+0.5,
		// layer 2 = 0.5+0.5 → 2.0 total scaled; retract 0.8 and recovery
		// 0.8 unscaled.
		origNet := gcode.ComputeStats(prog).NetFilament
		gotNet := gcode.ComputeStats(out).NetFilament
		want := origNet * factor
		if math.Abs(gotNet-want) > 1e-6 {
			t.Errorf("factor %v: net %v, want %v", factor, gotNet, want)
		}
	}
}

func TestReducePreservesGeometry(t *testing.T) {
	prog := parse(t, samplePrint)
	out, err := Reduce(prog, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	origMoves := gcode.ExtractMoves(prog)
	newMoves := gcode.ExtractMoves(out)
	if len(origMoves) != len(newMoves) {
		t.Fatalf("move count changed: %d -> %d", len(origMoves), len(newMoves))
	}
	for i := range origMoves {
		if origMoves[i].To.X != newMoves[i].To.X || origMoves[i].To.Y != newMoves[i].To.Y {
			t.Errorf("move %d geometry changed", i)
		}
	}
}

func TestReducePreservesRetraction(t *testing.T) {
	prog := parse(t, samplePrint)
	out, err := Reduce(prog, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// The retraction move G1 E0.2 (from E1.0) pulls 0.8 back; the
	// recovery must restore exactly 0.8 before new scaled extrusion.
	moves := gcode.ExtractMoves(out)
	var retract, recover float64
	for _, m := range moves {
		e := m.Extrusion()
		if e < 0 && retract == 0 {
			retract = -e
		}
		if e > 0 && m.From.XYDistance(m.To) < 1e-9 && recover == 0 {
			recover = e
		}
	}
	if math.Abs(retract-0.8) > 1e-6 {
		t.Errorf("retraction changed: %v", retract)
	}
	if math.Abs(recover-0.8) > 1e-6 {
		t.Errorf("recovery changed: %v", recover)
	}
}

func TestReduceRelativeE(t *testing.T) {
	prog := parse(t, "M83\nG1 X10 E1.0 F1200\nG1 X20 E1.0\nG1 E-0.8\nG1 E0.8\n")
	out, err := Reduce(prog, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	moves := gcode.ExtractMoves(out)
	if math.Abs(moves[0].Extrusion()-0.5) > 1e-9 {
		t.Errorf("relative reduction: first ΔE = %v", moves[0].Extrusion())
	}
	if math.Abs(moves[2].Extrusion()+0.8) > 1e-9 {
		t.Errorf("relative retraction scaled: %v", moves[2].Extrusion())
	}
	if math.Abs(moves[3].Extrusion()-0.8) > 1e-9 {
		t.Errorf("relative recovery scaled: %v", moves[3].Extrusion())
	}
}

func TestReduceBadFactor(t *testing.T) {
	prog := parse(t, samplePrint)
	for _, f := range []float64{0, -0.5, 1.01} {
		if _, err := Reduce(prog, f); err == nil {
			t.Errorf("factor %v accepted", f)
		}
	}
}

func TestReduceDoesNotMutateInput(t *testing.T) {
	prog := parse(t, samplePrint)
	before := prog.String()
	if _, err := Reduce(prog, 0.5); err != nil {
		t.Fatal(err)
	}
	if prog.String() != before {
		t.Error("Reduce mutated its input")
	}
}

// Property: reduction by factor f scales net filament by exactly f for
// arbitrary extrusion sequences without retraction.
func TestReduceScalingProperty(t *testing.T) {
	f := func(deltas []uint8, factorRaw uint8) bool {
		factor := 0.1 + float64(factorRaw%90)/100 // 0.10..0.99
		prog := gcode.Program{gcode.Synthesize("M83")}
		for i, d := range deltas {
			prog = append(prog, gcode.Synthesize("G1",
				gcode.P('X', float64(i)),
				gcode.P('E', float64(d)/100)))
		}
		out, err := Reduce(prog, factor)
		if err != nil {
			return false
		}
		want := gcode.ComputeStats(prog).NetFilament * factor
		got := gcode.ComputeStats(out).NetFilament
		return math.Abs(got-want) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRelocateEveryN(t *testing.T) {
	prog := parse(t, samplePrint)
	out, err := Relocate(prog, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 4 printing moves in the sample → 2 relocations, each inserting
	// 3 commands for 1 (travel, blob, back): +4 commands... the original
	// command is replaced, so net +2 per relocation.
	origCmds := len(prog.Commands())
	newCmds := len(out.Commands())
	if newCmds != origCmds+4 {
		t.Errorf("command count %d -> %d, want +4", origCmds, newCmds)
	}
}

func TestRelocateConservesFilament(t *testing.T) {
	prog := parse(t, samplePrint)
	out, err := Relocate(prog, 2)
	if err != nil {
		t.Fatal(err)
	}
	origNet := gcode.ComputeStats(prog).NetFilament
	newNet := gcode.ComputeStats(out).NetFilament
	if math.Abs(origNet-newNet) > 1e-6 {
		t.Errorf("relocation changed net filament: %v -> %v", origNet, newNet)
	}
}

func TestRelocateCreatesVoid(t *testing.T) {
	prog := parse(t, samplePrint)
	out, err := Relocate(prog, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The victim moves now extrude at the dump point outside the part:
	// some stationary extrusion must happen at (MinX−6, MinY−6).
	orig := gcode.ComputeStats(prog).Bounds
	dumpVisited := false
	for _, m := range gcode.ExtractMoves(out) {
		atDump := math.Abs(m.To.X-(orig.MinX-6)) < 1e-6 && math.Abs(m.To.Y-(orig.MinY-6)) < 1e-6
		if atDump && m.Extrusion() > 0 {
			dumpVisited = true
			break
		}
	}
	if !dumpVisited {
		t.Error("no material deposited at the dump point")
	}
	// Printing distance inside the part drops (victim segments skipped).
	if gcode.ComputeStats(out).PrintDistance >= gcode.ComputeStats(prog).PrintDistance {
		// Distance includes the blob (zero XY length), so tampered
		// should be strictly less.
		t.Error("relocation did not remove printed path length")
	}
}

func TestRelocateEndsAtIntendedDestination(t *testing.T) {
	prog := parse(t, samplePrint)
	out, err := Relocate(prog, 2)
	if err != nil {
		t.Fatal(err)
	}
	origMoves := gcode.ExtractMoves(prog)
	newMoves := gcode.ExtractMoves(out)
	origEnd := origMoves[len(origMoves)-1].To
	newEnd := newMoves[len(newMoves)-1].To
	if origEnd.X != newEnd.X || origEnd.Y != newEnd.Y {
		t.Errorf("final position changed: %+v vs %+v", newEnd, origEnd)
	}
	if math.Abs(origEnd.E-newEnd.E) > 1e-9 {
		t.Errorf("final E changed: %v vs %v", newEnd.E, origEnd.E)
	}
}

func TestRelocateErrors(t *testing.T) {
	prog := parse(t, samplePrint)
	if _, err := Relocate(prog, 0); err == nil {
		t.Error("interval 0 accepted")
	}
	travelOnly := parse(t, "G28\nG0 X10\nG0 Y10\n")
	if _, err := Relocate(travelOnly, 5); err == nil {
		t.Error("program without printing moves accepted")
	}
}

func TestTableIIMatrix(t *testing.T) {
	cases := TableII()
	if len(cases) != 8 {
		t.Fatalf("Table II has %d cases, want 8", len(cases))
	}
	wantTypes := []string{
		"Reduction", "Reduction", "Reduction", "Reduction",
		"Relocation", "Relocation", "Relocation", "Relocation",
	}
	wantValues := []float64{0.5, 0.85, 0.9, 0.98, 5, 10, 20, 100}
	for i, tc := range cases {
		if tc.Num != i+1 || tc.Type != wantTypes[i] || tc.Value != wantValues[i] {
			t.Errorf("case %d = %+v", i, tc)
		}
		if !strings.Contains(tc.String(), tc.Type) {
			t.Errorf("String() = %q", tc.String())
		}
	}
}

func TestTestCaseApply(t *testing.T) {
	prog := parse(t, samplePrint)
	for _, tc := range TableII() {
		out, err := tc.Apply(prog)
		if err != nil {
			t.Errorf("%s: %v", tc, err)
			continue
		}
		if len(out) == 0 {
			t.Errorf("%s produced empty program", tc)
		}
	}
	bogus := TestCase{Num: 9, Type: "Nonsense", Value: 1}
	if _, err := bogus.Apply(prog); err == nil {
		t.Error("bogus test case type accepted")
	}
}
