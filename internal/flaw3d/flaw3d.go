// Package flaw3d recreates the Flaw3D bootloader trojans (Pearce et al.,
// IEEE/ASME TMech 2022) as G-code transformations, the same way the paper
// does: "We recreate these Trojans using a Python script which modifies
// given g-code in the same way the malicious bootloader does" (§V-D).
//
// Two trojan families exist, forming the paper's Table II test matrix:
//
//   - Reduction: every positive extrusion is scaled by a factor
//     (0.5 … 0.98), starving the part of material.
//   - Relocation: every Nth printing move has its material deposited at a
//     dump location instead of along the intended path, leaving a void.
package flaw3d

import (
	"fmt"
	"math"

	"offramps/internal/gcode"
)

// TestCase is one row of the paper's Table II.
type TestCase struct {
	Num   int     // 1-based test case number
	Type  string  // "Reduction" or "Relocation"
	Value float64 // reduction factor, or moves between relocations
}

// TableII returns the paper's eight test cases.
func TableII() []TestCase {
	return []TestCase{
		{1, "Reduction", 0.5},
		{2, "Reduction", 0.85},
		{3, "Reduction", 0.9},
		{4, "Reduction", 0.98},
		{5, "Relocation", 5},
		{6, "Relocation", 10},
		{7, "Relocation", 20},
		{8, "Relocation", 100},
	}
}

// Apply runs the test case's transformation on prog.
func (tc TestCase) Apply(prog gcode.Program) (gcode.Program, error) {
	switch tc.Type {
	case "Reduction":
		return Reduce(prog, tc.Value)
	case "Relocation":
		return Relocate(prog, int(tc.Value))
	default:
		return nil, fmt.Errorf("flaw3d: unknown test case type %q", tc.Type)
	}
}

// String renders the test case like the Table II row.
func (tc TestCase) String() string {
	return fmt.Sprintf("case %d: %s %v", tc.Num, tc.Type, tc.Value)
}

// Reduce scales every positive extrusion delta by factor, leaving
// retractions and their recoveries untouched — exactly Flaw3D's
// "undermining the quantity of extruded material". Factor 0.98 removes
// only 2 % of material, the paper's stealthiest case.
func Reduce(prog gcode.Program, factor float64) (gcode.Program, error) {
	if factor <= 0 || factor > 1 {
		return nil, fmt.Errorf("flaw3d: reduction factor must be in (0,1], got %v", factor)
	}
	out := prog.Clone()
	orig := gcode.NewState() // tracks the victim's intended coordinates
	var adjusted float64     // rewritten logical E
	// retractDepth tracks how much the victim has retracted so recovery
	// moves restore exactly what was pulled (otherwise scaled recoveries
	// desynchronize the nozzle state).
	var retractDepth float64

	for i, cmd := range out {
		switch cmd.Code {
		case "G0", "G1":
			if !cmd.Has('E') {
				orig.Apply(cmd)
				continue
			}
			before := orig.Pos.E
			orig.Apply(cmd)
			delta := orig.Pos.E - before
			var newDelta float64
			switch {
			case delta >= 0 && retractDepth > 0:
				// Recovery: restore the retracted filament 1:1, scale
				// only the surplus.
				restore := math.Min(delta, retractDepth)
				retractDepth -= restore
				newDelta = restore + (delta-restore)*factor
			case delta >= 0:
				newDelta = delta * factor
			default:
				retractDepth += -delta
				newDelta = delta
			}
			adjusted += newDelta
			if orig.AbsoluteE {
				out[i] = cmd.WithWord('E', round6(adjusted))
			} else {
				out[i] = cmd.WithWord('E', round6(newDelta))
			}
		case "G92":
			orig.Apply(cmd)
			if cmd.Has('E') {
				adjusted = orig.Pos.E
				retractDepth = 0
			}
		default:
			orig.Apply(cmd)
		}
	}
	return out, nil
}

// Relocate redirects every nth printing move's material: instead of
// extruding along the commanded path, the nozzle travels to a dump point,
// deposits the same filament there as a blob, then travels to the move's
// intended destination without extruding. Geometry gains a void; total
// filament is conserved, which is what makes the relocation family
// stealthy against bulk material checks.
func Relocate(prog gcode.Program, n int) (gcode.Program, error) {
	if n <= 0 {
		return nil, fmt.Errorf("flaw3d: relocation interval must be positive, got %d", n)
	}
	// Dump the material near the part's minimum corner, slightly outside.
	stats := gcode.ComputeStats(prog)
	if !stats.Bounds.Valid() {
		return nil, fmt.Errorf("flaw3d: program has no printing moves to relocate")
	}
	dumpX := stats.Bounds.MinX - 6
	dumpY := stats.Bounds.MinY - 6

	var out gcode.Program
	orig := gcode.NewState()
	printing := 0
	for _, cmd := range prog {
		if !cmd.Is("G0") && !cmd.Is("G1") {
			orig.Apply(cmd)
			out = append(out, cmd)
			continue
		}
		mv, ok := orig.Apply(cmd)
		if !ok || !mv.IsPrinting() {
			out = append(out, cmd)
			continue
		}
		printing++
		if printing%n != 0 {
			out = append(out, cmd)
			continue
		}
		// Victim move: deposit its filament at the dump point instead.
		feed := mv.Feedrate
		if feed <= 0 {
			feed = 1800
		}
		travel := gcode.Synthesize("G0",
			gcode.P('X', round6(dumpX)), gcode.P('Y', round6(dumpY)),
			gcode.P('F', 7200))
		var blob gcode.Command
		if orig.AbsoluteE {
			blob = gcode.Synthesize("G1", gcode.P('E', round6(mv.To.E)), gcode.P('F', feed))
		} else {
			blob = gcode.Synthesize("G1", gcode.P('E', round6(mv.Extrusion())), gcode.P('F', feed))
		}
		back := gcode.Synthesize("G0",
			gcode.P('X', round6(mv.To.X)), gcode.P('Y', round6(mv.To.Y)),
			gcode.P('F', 7200))
		out = append(out, travel, blob, back)
	}
	return out, nil
}

func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }
