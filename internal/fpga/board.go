// Package fpga implements the OFFRAMPS board itself: a machine-in-the-
// middle between the Arduino-side and RAMPS-side buses (paper Section III).
// Every control signal crosses the FPGA through a PinPath that can forward
// (bypass), filter (mask), force (override), or inject — the four
// primitives from which all nine trojans of Table I are built. Alongside
// the trojan datapath, the board hosts the paper's monitoring modules
// (Section IV-B, V-B): edge detection, pulse generation, homing detection,
// axis tracking, and the UART capture exporter.
package fpga

import (
	"fmt"

	"offramps/internal/capture"
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// TapSide selects which bus(es) the board's monitoring tap — axis
// tracking plus the capture exporter — observes. The paper's rig taps the
// Arduino side (the FPGA's input), which is precisely why its own trojans
// are invisible to its own capture (§V-D: "both the attacks and defense
// would be co-located in the same FPGA"). Making the tap point
// configuration rather than architecture turns that limitation into a
// testable scenario axis.
type TapSide int

const (
	// TapArduino taps the FPGA's input: the capture records what the
	// firmware commanded. Board-injected trojans act downstream of this
	// tap and do not appear — the paper's §V-D co-location blind spot.
	TapArduino TapSide = iota
	// TapRAMPS taps the FPGA's output: the capture records what the
	// printer actually received, so board-injected trojans DO appear.
	TapRAMPS
	// TapDual taps both buses and exports two captures; diffing them
	// isolates exactly what the board itself modified.
	TapDual
)

// String names the tap side for configs and reports.
func (s TapSide) String() string {
	switch s {
	case TapArduino:
		return "arduino"
	case TapRAMPS:
		return "ramps"
	case TapDual:
		return "dual"
	default:
		return fmt.Sprintf("TapSide(%d)", int(s))
	}
}

// ParseTapSide maps a spec-file string to a TapSide ("" = the default
// Arduino-side tap).
func ParseTapSide(s string) (TapSide, error) {
	switch s {
	case "", "arduino":
		return TapArduino, nil
	case "ramps":
		return TapRAMPS, nil
	case "dual", "both":
		return TapDual, nil
	default:
		return 0, fmt.Errorf("fpga: unknown tap side %q (want arduino, ramps, or dual)", s)
	}
}

// TapsArduino reports whether the side includes the Arduino-side tap.
func (s TapSide) TapsArduino() bool { return s == TapArduino || s == TapDual }

// TapsRAMPS reports whether the side includes the RAMPS-side tap.
func (s TapSide) TapsRAMPS() bool { return s == TapRAMPS || s == TapDual }

// Config holds the board's electrical and export parameters.
type Config struct {
	// PropagationDelay is the through-FPGA latency applied to every
	// forwarded edge. The paper measured a worst case of 12.923 ns (on
	// Y_DIR); the default rounds that up to 13 ns.
	PropagationDelay sim.Time
	// ExportPeriod is the capture window; the paper's UART control unit
	// exports every 0.1 s.
	ExportPeriod sim.Time
	// Tap places the monitoring tap: the paper's Arduino-side input tap
	// (default), the RAMPS-side output tap, or both.
	Tap TapSide
}

// DefaultConfig matches the paper's measured platform.
func DefaultConfig() Config {
	return Config{
		PropagationDelay: 13 * sim.Nanosecond,
		ExportPeriod:     100 * sim.Millisecond,
		Tap:              TapArduino,
	}
}

// Validate reports the first invalid field, or nil.
func (c Config) Validate() error {
	if c.PropagationDelay < 0 {
		return fmt.Errorf("fpga: PropagationDelay must be non-negative")
	}
	if c.ExportPeriod <= 0 {
		return fmt.Errorf("fpga: ExportPeriod must be positive")
	}
	if c.Tap != TapArduino && c.Tap != TapRAMPS && c.Tap != TapDual {
		return fmt.Errorf("fpga: unknown tap side %v", c.Tap)
	}
	return nil
}

// Trojan is a malicious payload deployable onto the board. Arm installs
// its hooks; the payload decides its own trigger (typically homing
// detection, matching the paper's "this is the first action taken at the
// start of print and can determine when to activate Trojans").
type Trojan interface {
	// ID is a short unique identifier ("T1".."T9").
	ID() string
	// Description is a one-line summary for reports.
	Description() string
	// Arm installs the trojan onto the board.
	Arm(b *Board) error
}

// Board is the OFFRAMPS MITM. Create it between two buses; with no
// trojans installed it is the paper's 'bypass' configuration (golden
// print T0): every signal forwarded verbatim, delayed only by the
// propagation path.
type Board struct {
	engine  *sim.Engine
	cfg     Config
	arduino *signal.Bus
	ramps   *signal.Bus

	paths map[string]*PinPath

	homing *HomingDetector
	// taps holds one monitoring tap (tracker + exporter) per tapped bus;
	// primary is the side Recording()/Tracker() report, in tap preference
	// order (Arduino when tapped — the paper's rig — else RAMPS).
	taps    map[TapSide]*tap
	primary TapSide

	// spare holds recycled recording buffers donated by a pooled testbed
	// core; exporters consume them (in start order) instead of
	// allocating fresh backing arrays.
	spare [][]capture.Transaction

	trojans map[string]Trojan
	order   []string
}

// tap is one monitoring attachment point: the axis tracker counting a
// bus's STEP/DIR activity and the exporter emitting its capture.
type tap struct {
	tracker  *AxisTracker
	exporter *Exporter
}

// NewBoard wires the MITM between the two buses and starts the monitoring
// modules.
func NewBoard(engine *sim.Engine, arduino, ramps *signal.Bus, cfg Config) (*Board, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &Board{
		engine:  engine,
		cfg:     cfg,
		arduino: arduino,
		ramps:   ramps,
		paths:   make(map[string]*PinPath, len(signal.ControlPins)),
		taps:    make(map[TapSide]*tap, 2),
		trojans: make(map[string]Trojan),
	}

	// Control direction (Arduino → RAMPS): interceptable paths.
	for _, pin := range signal.ControlPins {
		b.paths[pin] = newPinPath(b, arduino.Line(pin), ramps.Line(pin), cfg.PropagationDelay)
	}
	// Feedback direction (RAMPS → Arduino): forwarded transparently. The
	// FPGA snoops these (homing detection) but the platform never needs
	// to modify them for the Table I suite.
	for _, pin := range signal.FeedbackPins {
		ramps.Line(pin).Connect(arduino.Line(pin), cfg.PropagationDelay)
	}
	// Analog thermistor channels pass through the ADC/DAC path.
	ramps.ThermHotend.Connect(arduino.ThermHotend)
	ramps.ThermBed.Connect(arduino.ThermBed)

	b.homing = NewHomingDetector(ramps)
	// Attach one monitoring tap per configured side. The Arduino tap is
	// wired first so callback registration order (tracker reset, then
	// exporter synchronization) matches the single-tap board exactly.
	if cfg.Tap.TapsArduino() {
		b.attachTap(TapArduino, arduino)
	}
	if cfg.Tap.TapsRAMPS() {
		b.attachTap(TapRAMPS, ramps)
	}
	b.primary = TapArduino
	if !cfg.Tap.TapsArduino() {
		b.primary = TapRAMPS
	}
	return b, nil
}

// attachTap wires an axis tracker and capture exporter onto one bus.
func (b *Board) attachTap(side TapSide, bus *signal.Bus) {
	tracker := NewAxisTracker(bus)
	b.homing.OnHomed(func(at sim.Time) { tracker.Reset(at) })
	b.taps[side] = &tap{tracker: tracker, exporter: newExporter(b, tracker)}
}

// Engine returns the simulation engine.
func (b *Board) Engine() *sim.Engine { return b.engine }

// Config returns the board configuration.
func (b *Board) Config() Config { return b.cfg }

// Path returns the interceptable path for a control pin. Unknown pins
// panic — the pin vocabulary is closed.
func (b *Board) Path(pin string) *PinPath {
	p, ok := b.paths[pin]
	if !ok {
		panic(fmt.Sprintf("fpga: no MITM path for pin %q", pin))
	}
	return p
}

// Homing exposes the homing detection module.
func (b *Board) Homing() *HomingDetector { return b.homing }

// PrimaryTap reports the side Recording() and Tracker() serve: the
// Arduino side whenever it is tapped (the paper's rig), else RAMPS.
func (b *Board) PrimaryTap() TapSide { return b.primary }

// Tracker exposes the primary tap's axis tracking module.
func (b *Board) Tracker() *AxisTracker { return b.taps[b.primary].tracker }

// TrackerAt exposes the axis tracker on one side, or nil when that side
// is not tapped. side must be TapArduino or TapRAMPS.
func (b *Board) TrackerAt(side TapSide) *AxisTracker {
	if t, ok := b.taps[side]; ok {
		return t.tracker
	}
	return nil
}

// SetCaptureMode selects full-trace or fingerprint-only capture for
// every tap. It must be called before any exporter starts (i.e. before
// the print's first post-homing step); changing mode mid-capture is an
// error.
func (b *Board) SetCaptureMode(m capture.Mode) error {
	if m != capture.ModeFull && m != capture.ModeFingerprint {
		return fmt.Errorf("fpga: unknown capture mode %v", m)
	}
	for _, t := range b.taps {
		if t.exporter.started {
			return fmt.Errorf("fpga: capture already started; cannot switch to %v mode", m)
		}
	}
	for _, t := range b.taps {
		t.exporter.mode = m
	}
	return nil
}

// CaptureMode reports the capture mode in effect.
func (b *Board) CaptureMode() capture.Mode { return b.taps[b.primary].exporter.mode }

// Windows reports how many transactions the primary tap has exported —
// valid in both capture modes (Recording().Len() is always zero in
// fingerprint mode).
func (b *Board) Windows() int { return b.taps[b.primary].exporter.Windows() }

// Fingerprint returns the primary tap's rolling capture fingerprint,
// maintained in both modes.
func (b *Board) Fingerprint() *capture.Fingerprint { return b.taps[b.primary].exporter.Fingerprint() }

// FingerprintAt returns one side's fingerprint, or nil when that side
// is not tapped. side must be TapArduino or TapRAMPS.
func (b *Board) FingerprintAt(side TapSide) *capture.Fingerprint {
	if t, ok := b.taps[side]; ok {
		return t.exporter.Fingerprint()
	}
	return nil
}

// DonateScratch hands the board recycled transaction buffers (length
// zero, capacity retained) for exporters to record into instead of
// allocating. Only meaningful before capture starts; full mode only.
func (b *Board) DonateScratch(bufs [][]capture.Transaction) { b.spare = append(b.spare, bufs...) }

// scratch pops one donated buffer, or nil.
func (b *Board) scratch() []capture.Transaction {
	if n := len(b.spare); n > 0 {
		buf := b.spare[n-1]
		b.spare = b.spare[:n-1]
		return buf[:0]
	}
	return nil
}

// Recording returns the primary tap's capture accumulated so far.
func (b *Board) Recording() *capture.Recording { return b.taps[b.primary].exporter.recording }

// RecordingAt returns one side's capture, or nil when that side is not
// tapped. side must be TapArduino or TapRAMPS.
func (b *Board) RecordingAt(side TapSide) *capture.Recording {
	if t, ok := b.taps[side]; ok {
		return t.exporter.recording
	}
	return nil
}

// OnExport registers fn to receive every capture transaction one side's
// exporter emits, in export order — the per-side streaming feed that
// lets side-bound live detectors observe a chosen tap instead of
// polling the primary recording. side must be TapArduino or TapRAMPS;
// subscribing to an untapped side is an error.
func (b *Board) OnExport(side TapSide, fn func(capture.Transaction)) error {
	t, ok := b.taps[side]
	if !ok {
		return fmt.Errorf("fpga: no %v tap to stream from (board taps %v)", side, b.cfg.Tap)
	}
	t.exporter.OnExport(fn)
	return nil
}

// StopCapture halts every export ticker; the recordings keep their
// contents.
func (b *Board) StopCapture() {
	for _, t := range b.taps {
		t.exporter.Stop()
	}
}

// OnHomed registers fn to run when the homing detector fires.
func (b *Board) OnHomed(fn func(at sim.Time)) { b.homing.OnHomed(fn) }

// InstallTrojan arms a trojan on the board. Installing two trojans with
// the same ID is an error.
func (b *Board) InstallTrojan(t Trojan) error {
	if t == nil {
		return fmt.Errorf("fpga: InstallTrojan(nil)")
	}
	if _, dup := b.trojans[t.ID()]; dup {
		return fmt.Errorf("fpga: trojan %s already installed", t.ID())
	}
	if err := t.Arm(b); err != nil {
		return fmt.Errorf("fpga: arming %s: %w", t.ID(), err)
	}
	b.trojans[t.ID()] = t
	b.order = append(b.order, t.ID())
	return nil
}

// Trojans lists installed trojans in installation order.
func (b *Board) Trojans() []Trojan {
	out := make([]Trojan, 0, len(b.order))
	for _, id := range b.order {
		out = append(out, b.trojans[id])
	}
	return out
}

// PinPath is one control signal's route through the FPGA fabric. Its
// default behaviour is a pure forward with the propagation delay; trojans
// compose three additional primitives:
//
//   - AddFilter: drop or pass individual source edges (T2/T3/T9 masking).
//   - Force/Release: clamp the output to a level, ignoring the source
//     (T6/T7/T8 overrides).
//   - InjectPulse: synthesize pulses the source never sent (T1/T3/T4/T5).
type PinPath struct {
	board *Board
	src   *signal.Line
	dst   *signal.Line
	delay sim.Time

	filters []func(at sim.Time, level signal.Level) bool
	forced  bool
	level   signal.Level
}

func newPinPath(b *Board, src, dst *signal.Line, delay sim.Time) *PinPath {
	p := &PinPath{board: b, src: src, dst: dst, delay: delay}
	dst.Set(src.Level())
	src.Watch(func(at sim.Time, level signal.Level) {
		if p.forced {
			return
		}
		for _, f := range p.filters {
			if !f(at, level) {
				return
			}
		}
		p.dst.SetAfter(p.delay, level)
	})
	return p
}

// Name reports the pin name the path carries.
func (p *PinPath) Name() string { return p.src.Name() }

// Source returns the Arduino-side line (MITM input).
func (p *PinPath) Source() *signal.Line { return p.src }

// Output returns the RAMPS-side line (MITM output).
func (p *PinPath) Output() *signal.Line { return p.dst }

// AddFilter installs an edge filter. Filters run in installation order;
// the first to return false suppresses the edge.
func (p *PinPath) AddFilter(f func(at sim.Time, level signal.Level) bool) {
	if f == nil {
		panic("fpga: AddFilter(nil)")
	}
	p.filters = append(p.filters, f)
}

// Force clamps the output to level until Release. Source edges are
// swallowed while forced.
func (p *PinPath) Force(level signal.Level) {
	p.forced = true
	p.level = level
	p.dst.SetAfter(p.delay, level)
}

// Forced reports whether the path is currently clamped.
func (p *PinPath) Forced() bool { return p.forced }

// Release removes a Force and resynchronizes the output to the source.
func (p *PinPath) Release() {
	if !p.forced {
		return
	}
	p.forced = false
	p.dst.SetAfter(p.delay, p.src.Level())
}

// InjectPulse synthesizes one High pulse of the given width on the output,
// regardless of source activity. Injections while forced are dropped (the
// clamp wins, like the hardware mux would).
func (p *PinPath) InjectPulse(width sim.Time) {
	if p.forced {
		return
	}
	if width <= 0 {
		panic(fmt.Sprintf("fpga: InjectPulse with non-positive width %v", width))
	}
	p.dst.SetAfter(p.delay, signal.High)
	p.board.engine.AfterEdge(p.delay+width, p, 0)
}

// FireEdge implements sim.EdgeTarget: it ends an injected pulse by
// restoring the output to the source's current level, so a concurrent
// real pulse is not cut short more than one injection width. Forced paths
// stay clamped.
func (p *PinPath) FireEdge(uint64) {
	if p.forced {
		return
	}
	p.dst.Set(p.src.Level())
}
