package fpga

import (
	"strings"
	"testing"

	"offramps/internal/signal"
	"offramps/internal/sim"
)

// testRig builds an engine with two buses joined by a Board.
func testRig(t *testing.T) (*sim.Engine, *signal.Bus, *signal.Bus, *Board) {
	t.Helper()
	e := sim.NewEngine()
	arduino := signal.NewBus(e)
	ramps := signal.NewBus(e)
	b, err := NewBoard(e, arduino, ramps, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e, arduino, ramps, b
}

func TestBoardForwardsControlWithDelay(t *testing.T) {
	e, arduino, ramps, _ := testRig(t)
	arduino.Step(signal.AxisX).Set(signal.High)
	if ramps.Step(signal.AxisX).Level() != signal.Low {
		t.Fatal("edge crossed MITM instantaneously")
	}
	if err := e.Run(13 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if ramps.Step(signal.AxisX).Level() != signal.High {
		t.Fatal("edge did not cross MITM after propagation delay")
	}
}

func TestBoardForwardsFeedback(t *testing.T) {
	e, arduino, ramps, _ := testRig(t)
	ramps.MinEndstop(signal.AxisY).Set(signal.High)
	if err := e.Run(sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if arduino.MinEndstop(signal.AxisY).Level() != signal.High {
		t.Error("endstop did not propagate back to Arduino side")
	}
	ramps.ThermHotend.Set(2.5)
	if arduino.ThermHotend.Value() != 2.5 {
		t.Error("thermistor analog did not propagate")
	}
}

func TestPinPathFilterMasks(t *testing.T) {
	e, arduino, ramps, b := testRig(t)
	// Drop every second rising edge on E_STEP.
	n := 0
	b.Path(signal.PinEStep).AddFilter(func(_ sim.Time, level signal.Level) bool {
		if level != signal.High {
			return true
		}
		n++
		return n%2 == 1
	})
	tr := signal.NewTrace(ramps.Step(signal.AxisE))
	for i := 0; i < 10; i++ {
		at := sim.Time(i+1) * 100 * sim.Microsecond
		line := arduino.Step(signal.AxisE)
		e.Schedule(at, func() { line.Set(signal.High) })
		e.Schedule(at+2*sim.Microsecond, func() { line.Set(signal.Low) })
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := tr.RisingEdges(); got != 5 {
		t.Errorf("output pulses = %d, want 5 (half masked)", got)
	}
}

func TestPinPathForceAndRelease(t *testing.T) {
	e, arduino, ramps, b := testRig(t)
	path := b.Path(signal.PinHotend)
	arduino.Line(signal.PinHotend).Set(signal.High)
	if err := e.Run(sim.Microsecond); err != nil {
		t.Fatal(err)
	}

	path.Force(signal.Low) // T6 behaviour
	if err := e.Run(2 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if ramps.Line(signal.PinHotend).Level() != signal.Low {
		t.Fatal("Force(Low) not applied")
	}
	// Source edges are swallowed while forced.
	arduino.Line(signal.PinHotend).Set(signal.Low)
	arduino.Line(signal.PinHotend).Set(signal.High)
	if err := e.Run(3 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if ramps.Line(signal.PinHotend).Level() != signal.Low {
		t.Fatal("forced path leaked a source edge")
	}
	if !path.Forced() {
		t.Error("Forced() = false")
	}

	path.Release()
	if err := e.Run(4 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if ramps.Line(signal.PinHotend).Level() != signal.High {
		t.Error("Release did not resync to source level")
	}
	path.Release() // idempotent
}

func TestPinPathInjectPulse(t *testing.T) {
	e, _, ramps, b := testRig(t)
	tr := signal.NewTrace(ramps.Step(signal.AxisX))
	b.Path(signal.PinXStep).InjectPulse(2 * sim.Microsecond)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if tr.RisingEdges() != 1 {
		t.Errorf("injected pulses = %d, want 1", tr.RisingEdges())
	}
	s := tr.ComputeStats()
	if s.MinPulseWidth != 2*sim.Microsecond {
		t.Errorf("injected width = %v", s.MinPulseWidth)
	}
}

func TestPinPathInjectSuppressedWhileForced(t *testing.T) {
	e, _, ramps, b := testRig(t)
	path := b.Path(signal.PinXStep)
	path.Force(signal.Low)
	tr := signal.NewTrace(ramps.Step(signal.AxisX))
	path.InjectPulse(2 * sim.Microsecond)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if tr.RisingEdges() != 0 {
		t.Error("injection bypassed a Force clamp")
	}
}

func TestBoardUnknownPathPanics(t *testing.T) {
	_, _, _, b := testRig(t)
	defer func() {
		if recover() == nil {
			t.Error("unknown pin did not panic")
		}
	}()
	b.Path("NOPE")
}

// fakeTrojan is a minimal Trojan for install tests.
type fakeTrojan struct {
	id     string
	armErr error
	armed  bool
}

func (f *fakeTrojan) ID() string          { return f.id }
func (f *fakeTrojan) Description() string { return "fake" }
func (f *fakeTrojan) Arm(*Board) error    { f.armed = true; return f.armErr }

func TestInstallTrojan(t *testing.T) {
	_, _, _, b := testRig(t)
	tr := &fakeTrojan{id: "TX"}
	if err := b.InstallTrojan(tr); err != nil {
		t.Fatal(err)
	}
	if !tr.armed {
		t.Error("trojan not armed")
	}
	if err := b.InstallTrojan(&fakeTrojan{id: "TX"}); err == nil {
		t.Error("duplicate trojan ID accepted")
	}
	if err := b.InstallTrojan(nil); err == nil {
		t.Error("nil trojan accepted")
	}
	if got := len(b.Trojans()); got != 1 {
		t.Errorf("Trojans() = %d entries", got)
	}
}

func TestBoardConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	a, r := signal.NewBus(e), signal.NewBus(e)
	bad := DefaultConfig()
	bad.PropagationDelay = -1
	if _, err := NewBoard(e, a, r, bad); err == nil {
		t.Error("negative delay accepted")
	}
	bad = DefaultConfig()
	bad.ExportPeriod = 0
	if _, err := NewBoard(e, a, r, bad); err == nil {
		t.Error("zero export period accepted")
	}
	if !strings.Contains(DefaultConfig().PropagationDelay.String(), "13ns") {
		t.Errorf("default delay = %v", DefaultConfig().PropagationDelay)
	}
}
