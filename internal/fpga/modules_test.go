package fpga

import (
	"testing"

	"offramps/internal/signal"
	"offramps/internal/sim"
)

func TestEdgeDetectorCounts(t *testing.T) {
	e := sim.NewEngine()
	line := signal.NewLine(e, "X_STEP")
	d := NewEdgeDetector(line)
	var fired []sim.Time
	d.OnRising(func(at sim.Time) { fired = append(fired, at) })
	for i := 0; i < 4; i++ {
		line.Set(signal.High)
		line.Set(signal.Low)
	}
	if d.Rising() != 4 || d.Falling() != 4 {
		t.Errorf("rising=%d falling=%d", d.Rising(), d.Falling())
	}
	if len(fired) != 4 {
		t.Errorf("handler fired %d times", len(fired))
	}
}

func TestPulseGeneratorBurst(t *testing.T) {
	e, _, ramps, b := testRig(t)
	g, err := NewPulseGenerator(b.Path(signal.PinZStep), 4000, 2*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	tr := signal.NewTrace(ramps.Step(signal.AxisZ))
	doneCalled := false
	if err := g.Burst(10, func() { doneCalled = true }); err != nil {
		t.Fatal(err)
	}
	if !g.Running() {
		t.Error("generator not running during burst")
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if tr.RisingEdges() != 10 {
		t.Errorf("burst emitted %d pulses, want 10", tr.RisingEdges())
	}
	if !doneCalled {
		t.Error("done callback not invoked")
	}
	if g.Running() {
		t.Error("generator still running after burst")
	}
	// Pulse spacing = 250 µs at 4 kHz.
	s := tr.ComputeStats()
	if s.MinPeriod != 250*sim.Microsecond {
		t.Errorf("period = %v, want 250µs", s.MinPeriod)
	}
}

func TestPulseGeneratorBusy(t *testing.T) {
	_, _, _, b := testRig(t)
	g, err := NewPulseGenerator(b.Path(signal.PinZStep), 4000, 2*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Burst(5, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.Burst(5, nil); err == nil {
		t.Error("overlapping burst accepted")
	}
	if err := g.Burst(0, nil); err == nil {
		t.Error("zero-count burst accepted")
	}
}

func TestPulseGeneratorValidation(t *testing.T) {
	_, _, _, b := testRig(t)
	path := b.Path(signal.PinZStep)
	if _, err := NewPulseGenerator(path, 0, sim.Microsecond); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := NewPulseGenerator(path, 1000, 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewPulseGenerator(path, 1_000_000, 2*sim.Microsecond); err == nil {
		t.Error("width wider than period accepted")
	}
}

// pressSequence drives a double-tap homing pattern on an endstop line.
func pressSequence(e *sim.Engine, line *signal.Line, start sim.Time) sim.Time {
	at := start
	for i := 0; i < 2; i++ {
		func(at sim.Time) {
			e.Schedule(at, func() { line.Set(signal.High) })
			e.Schedule(at+10*sim.Millisecond, func() { line.Set(signal.Low) })
		}(at)
		at += 50 * sim.Millisecond
	}
	return at
}

func TestHomingDetectorFullCycle(t *testing.T) {
	e, _, ramps, b := testRig(t)
	var homedAt sim.Time
	b.OnHomed(func(at sim.Time) { homedAt = at })

	at := pressSequence(e, ramps.MinEndstop(signal.AxisX), 10*sim.Millisecond)
	at = pressSequence(e, ramps.MinEndstop(signal.AxisY), at)
	pressSequence(e, ramps.MinEndstop(signal.AxisZ), at)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !b.Homing().Homed() {
		t.Fatal("full double-tap sequence not recognized")
	}
	if homedAt == 0 || b.Homing().HomedAt() != homedAt {
		t.Errorf("homedAt = %v / %v", homedAt, b.Homing().HomedAt())
	}
	// Late registration still fires immediately.
	fired := false
	b.OnHomed(func(sim.Time) { fired = true })
	if !fired {
		t.Error("OnHomed after homing did not fire immediately")
	}
}

func TestHomingDetectorIgnoresOutOfOrder(t *testing.T) {
	e, _, ramps, b := testRig(t)
	// Z first — not part of an X→Y→Z cycle.
	at := pressSequence(e, ramps.MinEndstop(signal.AxisZ), 10*sim.Millisecond)
	pressSequence(e, ramps.MinEndstop(signal.AxisY), at)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if b.Homing().Homed() {
		t.Error("out-of-order presses recognized as homing")
	}
}

func TestHomingDetectorSingleTapInsufficient(t *testing.T) {
	e, _, ramps, b := testRig(t)
	// One press per axis only.
	for i, a := range []signal.Axis{signal.AxisX, signal.AxisY, signal.AxisZ} {
		line := ramps.MinEndstop(a)
		at := sim.Time(i+1) * 20 * sim.Millisecond
		e.Schedule(at, func() { line.Set(signal.High) })
		e.Schedule(at+5*sim.Millisecond, func() { line.Set(signal.Low) })
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if b.Homing().Homed() {
		t.Error("single taps recognized as full homing")
	}
}

func TestAxisTrackerCountsWithDirection(t *testing.T) {
	e, arduino, _, b := testRig(t)
	step := arduino.Step(signal.AxisX)
	dir := arduino.Dir(signal.AxisX)

	pulse := func() {
		step.Set(signal.High)
		step.Set(signal.Low)
	}
	dir.Set(signal.Low) // positive
	pulse()
	pulse()
	pulse()
	dir.Set(signal.High) // negative
	pulse()
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := b.Tracker().Count(signal.AxisX); got != 2 {
		t.Errorf("Count(X) = %d, want 2", got)
	}
	tx := b.Tracker().Snapshot(7)
	if tx.Index != 7 || tx.X != 2 || tx.Y != 0 {
		t.Errorf("Snapshot = %+v", tx)
	}
}

func TestAxisTrackerResetAndFirstStep(t *testing.T) {
	e, arduino, _, b := testRig(t)
	step := arduino.Step(signal.AxisY)
	step.Set(signal.High)
	step.Set(signal.Low)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if b.Tracker().Count(signal.AxisY) != 1 {
		t.Fatal("pre-reset count wrong")
	}
	b.Tracker().Reset(e.Now())
	if b.Tracker().Count(signal.AxisY) != 0 {
		t.Error("Reset did not zero counters")
	}
	var firstAt sim.Time = -1
	b.Tracker().OnFirstStep(func(at sim.Time) { firstAt = at })
	e.Schedule(e.Now()+sim.Millisecond, func() {
		step.Set(signal.High)
		step.Set(signal.Low)
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if firstAt < 0 {
		t.Error("OnFirstStep did not fire after reset")
	}
	// Immediate delivery when already stepped.
	fired := false
	b.Tracker().OnFirstStep(func(sim.Time) { fired = true })
	if !fired {
		t.Error("OnFirstStep after first step did not fire immediately")
	}
}

func TestExporterLifecycle(t *testing.T) {
	e, arduino, ramps, b := testRig(t)
	if b.Recording().Len() != 0 {
		t.Fatal("recording not empty at start")
	}

	// Complete a homing cycle.
	at := pressSequence(e, ramps.MinEndstop(signal.AxisX), 10*sim.Millisecond)
	at = pressSequence(e, ramps.MinEndstop(signal.AxisY), at)
	endOfHoming := pressSequence(e, ramps.MinEndstop(signal.AxisZ), at)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// No export before the first step.
	if err := e.Run(e.Now() + sim.Second); err != nil {
		t.Fatal(err)
	}
	if b.Recording().Len() != 0 {
		t.Error("exporter ran before the first STEP edge")
	}

	// First step starts the 0.1 s windows.
	step := arduino.Step(signal.AxisX)
	e.Schedule(endOfHoming+2*sim.Second, func() {
		step.Set(signal.High)
		step.Set(signal.Low)
	})
	if err := e.Run(endOfHoming + 2*sim.Second + 1050*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	got := b.Recording().Len()
	if got != 10 {
		t.Errorf("transactions after 1.05 s = %d, want 10", got)
	}
	if b.Recording().Transactions[0].X != 1 {
		t.Errorf("first window X = %d, want 1", b.Recording().Transactions[0].X)
	}

	b.StopCapture()
	if err := e.Run(e.Now() + sim.Second); err != nil {
		t.Fatal(err)
	}
	if b.Recording().Len() != got {
		t.Error("exporter kept running after StopCapture")
	}
}
