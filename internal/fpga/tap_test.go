package fpga

import (
	"testing"

	"offramps/internal/capture"
	"offramps/internal/signal"
	"offramps/internal/sim"
)

func TestParseTapSide(t *testing.T) {
	cases := []struct {
		in   string
		want TapSide
		err  bool
	}{
		{"", TapArduino, false},
		{"arduino", TapArduino, false},
		{"ramps", TapRAMPS, false},
		{"dual", TapDual, false},
		{"both", TapDual, false},
		{"sideways", 0, true},
	}
	for _, c := range cases {
		got, err := ParseTapSide(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseTapSide(%q) err = %v", c.in, err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseTapSide(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if TapArduino.String() != "arduino" || TapRAMPS.String() != "ramps" || TapDual.String() != "dual" {
		t.Error("TapSide.String vocabulary changed")
	}
}

func TestConfigValidatesTapSide(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tap = TapSide(42)
	if err := cfg.Validate(); err == nil {
		t.Error("invalid tap side accepted")
	}
}

// tapRig builds a homed board with the given tap configuration so the
// trackers are reset and counting.
func tapRig(t *testing.T, tap TapSide) (*sim.Engine, *signal.Bus, *Board) {
	t.Helper()
	e := sim.NewEngine()
	arduino := signal.NewBus(e)
	ramps := signal.NewBus(e)
	cfg := DefaultConfig()
	cfg.Tap = tap
	b, err := NewBoard(e, arduino, ramps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := pressSequence(e, ramps.MinEndstop(signal.AxisX), 10*sim.Millisecond)
	at = pressSequence(e, ramps.MinEndstop(signal.AxisY), at)
	pressSequence(e, ramps.MinEndstop(signal.AxisZ), at)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !b.Homing().Homed() {
		t.Fatal("rig did not home")
	}
	return e, arduino, b
}

func TestRAMPSTapIsPrimaryWhenArduinoUntapped(t *testing.T) {
	_, _, b := tapRig(t, TapRAMPS)
	if b.PrimaryTap() != TapRAMPS {
		t.Errorf("primary tap = %v, want ramps", b.PrimaryTap())
	}
	if b.TrackerAt(TapArduino) != nil || b.RecordingAt(TapArduino) != nil {
		t.Error("untapped Arduino side exposes a tracker/recording")
	}
	if b.TrackerAt(TapRAMPS) == nil || b.Recording() == nil {
		t.Error("RAMPS tap missing")
	}
	if b.Recording() != b.RecordingAt(TapRAMPS) {
		t.Error("primary recording is not the RAMPS capture")
	}
}

// TestDualTapSeparatesCommandedFromReceived is the §V-D co-location axis
// in miniature: steps the firmware commands are counted by both taps,
// while steps the board itself injects appear only on the RAMPS side.
func TestDualTapSeparatesCommandedFromReceived(t *testing.T) {
	e, arduino, b := tapRig(t, TapDual)
	if b.PrimaryTap() != TapArduino {
		t.Fatalf("primary tap = %v, want arduino", b.PrimaryTap())
	}

	// Firmware commands 3 positive X steps.
	step := arduino.Step(signal.AxisX)
	at := e.Now() + sim.Millisecond
	for i := 0; i < 3; i++ {
		func(at sim.Time) {
			e.Schedule(at, func() { step.Set(signal.High) })
			e.Schedule(at+2*sim.Microsecond, func() { step.Set(signal.Low) })
		}(at)
		at += 100 * sim.Microsecond
	}
	// The board injects 2 more, downstream of the Arduino-side tap.
	e.Schedule(at, func() {
		b.Path(signal.PinXStep).InjectPulse(2 * sim.Microsecond)
	})
	e.Schedule(at+100*sim.Microsecond, func() {
		b.Path(signal.PinXStep).InjectPulse(2 * sim.Microsecond)
	})
	// Bounded run: the first STEP edge starts the export tickers, which
	// reschedule forever, so the engine never goes idle from here on.
	if err := e.Run(at + sim.Second); err != nil {
		t.Fatal(err)
	}

	if got := b.TrackerAt(TapArduino).Count(signal.AxisX); got != 3 {
		t.Errorf("Arduino-side count = %d, want 3 (commanded only)", got)
	}
	if got := b.TrackerAt(TapRAMPS).Count(signal.AxisX); got != 5 {
		t.Errorf("RAMPS-side count = %d, want 5 (commanded + injected)", got)
	}
	if b.Tracker() != b.TrackerAt(TapArduino) {
		t.Error("primary tracker is not the Arduino-side tracker under dual tap")
	}
}

// TestOnExportStreamsPerSide drives a dual-tap board with a board-
// injected extra step and checks the per-side streams deliver exactly
// what the matching recordings accumulate, in export order — the feed
// contract side-bound live detectors rely on.
func TestOnExportStreamsPerSide(t *testing.T) {
	e, arduino, b := tapRig(t, TapDual)

	var gotArduino, gotRAMPS []capture.Transaction
	if err := b.OnExport(TapArduino, func(tx capture.Transaction) {
		gotArduino = append(gotArduino, tx)
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.OnExport(TapRAMPS, func(tx capture.Transaction) {
		gotRAMPS = append(gotRAMPS, tx)
	}); err != nil {
		t.Fatal(err)
	}

	step := arduino.Step(signal.AxisX)
	at := e.Now() + sim.Millisecond
	e.Schedule(at, func() { step.Set(signal.High) })
	e.Schedule(at+2*sim.Microsecond, func() { step.Set(signal.Low) })
	e.Schedule(at+100*sim.Microsecond, func() {
		b.Path(signal.PinXStep).InjectPulse(2 * sim.Microsecond)
	})
	if err := e.Run(at + sim.Second); err != nil {
		t.Fatal(err)
	}

	for side, got := range map[TapSide][]capture.Transaction{
		TapArduino: gotArduino,
		TapRAMPS:   gotRAMPS,
	} {
		rec := b.RecordingAt(side)
		if len(got) == 0 || len(got) != rec.Len() {
			t.Fatalf("%v stream delivered %d transactions, recording has %d", side, len(got), rec.Len())
		}
		for i, tx := range got {
			if tx != rec.Transactions[i] {
				t.Fatalf("%v stream[%d] = %+v, recording has %+v", side, i, tx, rec.Transactions[i])
			}
		}
	}
	// The injected step reaches only the RAMPS-side stream.
	if up, down := gotArduino[len(gotArduino)-1].X, gotRAMPS[len(gotRAMPS)-1].X; up+1 != down {
		t.Errorf("final X counts: arduino %d, ramps %d — want the one injected step downstream only", up, down)
	}
}

func TestOnExportRejectsUntappedSide(t *testing.T) {
	_, _, b := tapRig(t, TapArduino)
	if err := b.OnExport(TapRAMPS, func(capture.Transaction) {}); err == nil {
		t.Error("subscription to an untapped side accepted")
	}
	if err := b.OnExport(TapDual, func(capture.Transaction) {}); err == nil {
		t.Error("OnExport(TapDual) accepted — subscriptions are per side")
	}
}
