package fpga

import (
	"offramps/internal/capture"
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// AxisTracker is the paper's Axis Tracking module (§V-B): a set of rising-
// edge detectors and counters on the STEP/DIR pairs, incrementing on
// positive-direction steps and decrementing on negative. After homing the
// counters are absolute positions within the build volume (and cumulative
// filament for E).
//
// Which bus a tracker counts is the board's tap placement (Config.Tap).
// The paper's rig taps the Arduino-side lines — the FPGA's *input* — so
// its capture records what the firmware actually commanded; trojans
// injected downstream (by this same board) do not appear in that capture,
// which is why the paper evaluates detection against upstream (Flaw3D)
// trojans rather than its own (§V-D "both the attacks and defense would
// be co-located in the same FPGA"). A RAMPS-side tap counts the FPGA's
// *output* instead and does see board-injected trojans.
type AxisTracker struct {
	counts  map[signal.Axis]int64
	dirs    map[signal.Axis]*signal.Line
	edges   map[signal.Axis]*EdgeDetector
	resetAt sim.Time
	// firstStep is the time of the first STEP edge after the last Reset;
	// -1 when none seen yet. The exporter synchronizes on it.
	firstStep   sim.Time
	onFirstStep []func(at sim.Time)
}

// NewAxisTracker attaches counters to every axis of bus.
func NewAxisTracker(bus *signal.Bus) *AxisTracker {
	t := &AxisTracker{
		counts:    make(map[signal.Axis]int64, 4),
		dirs:      make(map[signal.Axis]*signal.Line, 4),
		edges:     make(map[signal.Axis]*EdgeDetector, 4),
		firstStep: -1,
	}
	for _, a := range signal.Axes {
		a := a
		t.dirs[a] = bus.Dir(a)
		det := NewEdgeDetector(bus.Step(a))
		det.OnRising(func(at sim.Time) { t.step(a, at) })
		t.edges[a] = det
	}
	return t
}

func (t *AxisTracker) step(a signal.Axis, at sim.Time) {
	if t.firstStep < 0 {
		t.firstStep = at
		for _, fn := range t.onFirstStep {
			fn(at)
		}
	}
	if t.dirs[a].Level() == signal.High {
		t.counts[a]--
	} else {
		t.counts[a]++
	}
}

// Reset zeroes all counters (homing detected) and re-arms the first-step
// synchronization.
func (t *AxisTracker) Reset(at sim.Time) {
	for _, a := range signal.Axes {
		t.counts[a] = 0
	}
	t.resetAt = at
	t.firstStep = -1
}

// Count reports the current net step count of an axis.
func (t *AxisTracker) Count(a signal.Axis) int64 { return t.counts[a] }

// Snapshot captures all four counters as a transaction payload.
func (t *AxisTracker) Snapshot(index uint32) capture.Transaction {
	return capture.Transaction{
		Index: index,
		X:     int32(t.counts[signal.AxisX]),
		Y:     int32(t.counts[signal.AxisY]),
		Z:     int32(t.counts[signal.AxisZ]),
		E:     int32(t.counts[signal.AxisE]),
	}
}

// OnFirstStep registers fn to run at the first STEP edge after a Reset.
// If a step has already been seen, fn runs immediately.
func (t *AxisTracker) OnFirstStep(fn func(at sim.Time)) {
	if fn == nil {
		panic("fpga: OnFirstStep(nil)")
	}
	if t.firstStep >= 0 {
		fn(t.firstStep)
		return
	}
	t.onFirstStep = append(t.onFirstStep, fn)
}

// Exporter is the paper's UART control unit (§V-B): once the print head
// has homed and the first STEP edge is found, it emits a 16-byte
// transaction with all four step counts every ExportPeriod. "This
// synchronization significantly increased accuracy over initial tests
// which did not wait for the first step."
type Exporter struct {
	board     *Board
	tracker   *AxisTracker
	recording *capture.Recording
	fp        capture.Fingerprint
	mode      capture.Mode
	index     uint32
	started   bool
	stop      func()
	onExport  []func(capture.Transaction)
}

// newExporter attaches an exporter to one tap's tracker; a dual-tap
// board runs one exporter per tapped bus.
func newExporter(b *Board, tracker *AxisTracker) *Exporter {
	e := &Exporter{
		board:     b,
		tracker:   tracker,
		recording: &capture.Recording{Period: b.cfg.ExportPeriod},
		fp:        capture.Fingerprint{Period: b.cfg.ExportPeriod},
	}
	b.homing.OnHomed(func(sim.Time) {
		tracker.OnFirstStep(func(at sim.Time) { e.start(at) })
	})
	return e
}

func (e *Exporter) start(at sim.Time) {
	if e.started {
		return
	}
	e.started = true
	e.recording.StartedAt = at
	e.fp.StartedAt = at
	if e.mode == capture.ModeFull && e.recording.Transactions == nil {
		// Preallocate for a typical print: the standard test part runs
		// ≈2 simulated minutes, ≈1.2k windows at the 0.1 s export
		// period. Growing past this is still amortized append.
		// Fingerprint-mode captures never pay for this buffer.
		if cap := e.board.scratch(); cap != nil {
			e.recording.Transactions = cap
		} else {
			e.recording.Transactions = make([]capture.Transaction, 0, 2048)
		}
	}
	e.stop = e.board.engine.Ticker(e.board.cfg.ExportPeriod, func(sim.Time) {
		tx := e.tracker.Snapshot(e.index)
		e.index++
		e.fp.Add(tx)
		if e.mode == capture.ModeFull {
			// Append cannot fail: indices are generated contiguously here.
			if err := e.recording.Append(tx); err != nil {
				panic("fpga: exporter generated non-contiguous index: " + err.Error())
			}
		}
		for _, fn := range e.onExport {
			fn(tx)
		}
	})
}

// Fingerprint returns the rolling capture fingerprint, maintained in
// both modes. Stable (no further Adds) once the exporter is stopped.
func (e *Exporter) Fingerprint() *capture.Fingerprint { return &e.fp }

// Windows reports how many transactions have been exported.
func (e *Exporter) Windows() int { return int(e.index) }

// OnExport registers fn to receive every transaction this exporter
// emits, in export order, at the simulated instant the hardware would
// put it on the UART — the streaming feed behind live detection.
// Subscribers run after the transaction is appended to the recording.
func (e *Exporter) OnExport(fn func(capture.Transaction)) {
	if fn == nil {
		panic("fpga: OnExport(nil)")
	}
	e.onExport = append(e.onExport, fn)
}

// Started reports whether export has begun.
func (e *Exporter) Started() bool { return e.started }

// Stop halts the export ticker (end of session).
func (e *Exporter) Stop() {
	if e.stop != nil {
		e.stop()
		e.stop = nil
	}
}
