package fpga

import (
	"fmt"

	"offramps/internal/signal"
	"offramps/internal/sim"
)

// EdgeDetector is the paper's Edge Detection Module: it identifies events
// such as print-head movements or extrusions by watching STEP/DIR edges
// (§IV-B). It counts rising and falling edges on one line and invokes an
// optional handler on rising edges.
type EdgeDetector struct {
	rising  uint64
	falling uint64
	onRise  []func(at sim.Time)
}

// NewEdgeDetector attaches a detector to line.
func NewEdgeDetector(line *signal.Line) *EdgeDetector {
	d := &EdgeDetector{}
	line.Watch(func(at sim.Time, level signal.Level) {
		if level == signal.High {
			d.rising++
			for _, fn := range d.onRise {
				fn(at)
			}
		} else {
			d.falling++
		}
	})
	return d
}

// OnRising registers fn to run at every rising edge.
func (d *EdgeDetector) OnRising(fn func(at sim.Time)) {
	if fn == nil {
		panic("fpga: OnRising(nil)")
	}
	d.onRise = append(d.onRise, fn)
}

// Rising reports the rising-edge count.
func (d *EdgeDetector) Rising() uint64 { return d.rising }

// Falling reports the falling-edge count.
func (d *EdgeDetector) Falling() uint64 { return d.falling }

// PulseGenerator is the paper's Pulse Generation Module: it produces step
// pulses with configurable frequency and width for trojan injection
// (§IV-B). It drives pulses through a PinPath so the trojan multiplexing
// rules apply.
type PulseGenerator struct {
	path   *PinPath
	engine *sim.Engine
	period sim.Time
	width  sim.Time

	running   bool
	remaining int
	onDone    func()
}

// NewPulseGenerator builds a generator on path emitting pulses of the
// given frequency (Hz) and width.
func NewPulseGenerator(path *PinPath, frequency float64, width sim.Time) (*PulseGenerator, error) {
	if frequency <= 0 {
		return nil, fmt.Errorf("fpga: pulse generator frequency must be positive, got %v", frequency)
	}
	if width <= 0 {
		return nil, fmt.Errorf("fpga: pulse generator width must be positive, got %v", width)
	}
	period := sim.FromSeconds(1 / frequency)
	if period <= width {
		return nil, fmt.Errorf("fpga: pulse generator width %v does not fit period %v", width, period)
	}
	return &PulseGenerator{
		path:   path,
		engine: path.board.engine,
		period: period,
		width:  width,
	}, nil
}

// Burst emits n pulses then stops, invoking done (which may be nil).
// Calling Burst while a burst is running is an error.
//
// The first pulse fires half a period after the call rather than
// immediately: trojan bursts are usually triggered from a source edge
// callback, and the offset places injected pulses "in between the
// original control pulses" (paper §IV-C T1) instead of merging the first
// injection into the triggering pulse.
func (g *PulseGenerator) Burst(n int, done func()) error {
	if g.running {
		return fmt.Errorf("fpga: pulse generator busy")
	}
	if n <= 0 {
		return fmt.Errorf("fpga: burst count must be positive, got %d", n)
	}
	g.running = true
	g.remaining = n
	g.onDone = done
	g.engine.After(g.period/2, g.tick)
	return nil
}

// Running reports whether a burst is in progress.
func (g *PulseGenerator) Running() bool { return g.running }

func (g *PulseGenerator) tick() {
	if g.remaining <= 0 {
		g.running = false
		if g.onDone != nil {
			g.onDone()
		}
		return
	}
	g.remaining--
	g.path.InjectPulse(g.width)
	g.engine.After(g.period, g.tick)
}

// homingPhase tracks the double-tap progress of one axis.
type homingPhase int

const (
	phasePending homingPhase = iota
	phaseFirstTap
	phaseDone
)

// HomingDetector is the paper's Homing Detection Module: "a state machine
// which tracks actuation of the endstops in a defined order to determine
// when the print head has homed" (§IV-B). Marlin double-taps each endstop
// (fast approach, back-off, slow approach), so the detector waits for two
// presses per axis, in X→Y→Z order, then declares the machine homed.
//
// Homing is the synchronization anchor of the whole monitoring design:
// step counters reset here, and capture export begins at the first STEP
// edge after it.
type HomingDetector struct {
	axes    []signal.Axis
	phase   map[signal.Axis]homingPhase
	current int
	homed   bool
	homedAt sim.Time
	onHomed []func(at sim.Time)
}

// NewHomingDetector watches the endstop lines of bus (the RAMPS side,
// where the switches live).
func NewHomingDetector(bus *signal.Bus) *HomingDetector {
	d := &HomingDetector{
		axes:  []signal.Axis{signal.AxisX, signal.AxisY, signal.AxisZ},
		phase: make(map[signal.Axis]homingPhase, 3),
	}
	for _, a := range d.axes {
		a := a
		bus.MinEndstop(a).Watch(func(at sim.Time, level signal.Level) {
			if level == signal.High {
				d.press(a, at)
			}
		})
	}
	return d
}

// press advances the state machine on an endstop closure.
func (d *HomingDetector) press(a signal.Axis, at sim.Time) {
	if d.homed || d.current >= len(d.axes) || d.axes[d.current] != a {
		// Out-of-order or post-homing press: not part of a homing cycle.
		return
	}
	switch d.phase[a] {
	case phasePending:
		d.phase[a] = phaseFirstTap
	case phaseFirstTap:
		d.phase[a] = phaseDone
		d.current++
		if d.current == len(d.axes) {
			d.homed = true
			d.homedAt = at
			for _, fn := range d.onHomed {
				fn(at)
			}
		}
	}
}

// Homed reports whether a complete homing cycle has been observed.
func (d *HomingDetector) Homed() bool { return d.homed }

// HomedAt reports when homing completed (zero if not yet).
func (d *HomingDetector) HomedAt() sim.Time { return d.homedAt }

// OnHomed registers fn to run when homing completes. If the detector has
// already fired, fn runs immediately.
func (d *HomingDetector) OnHomed(fn func(at sim.Time)) {
	if fn == nil {
		panic("fpga: OnHomed(nil)")
	}
	if d.homed {
		fn(d.homedAt)
		return
	}
	d.onHomed = append(d.onHomed, fn)
}
