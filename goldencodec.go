package offramps

import (
	"encoding/binary"
	"fmt"
	"math"

	"offramps/internal/capture"
	"offramps/internal/printer"
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// GoldenCodecVersion versions the binary serialization of a golden
// Result in the persistent store (internal/goldenstore). Bump it on ANY
// change to the encoded shape — decode treats every other version as a
// miss, so a bump silently invalidates persisted stores and CI caches
// (which key on it) instead of mis-decoding old bytes.
const GoldenCodecVersion uint32 = 1

// A golden result is the restricted Result shape the cache memoizes:
// trojan-free, detector-free, hook-free (see Scenario.goldenCacheable).
// The codec leans on that: it refuses anything carrying detector
// reports, an abort, or a firmware halt, so the encoded form only ever
// has to cover captures, fingerprints, the deposited part, quality, and
// the thermal/step summaries — and a decoded result is bit-identical
// (reflect.DeepEqual, including recording aliasing between the primary
// and per-side tap views) to the fresh run it was encoded from.

// encodable rejects results the golden codec does not cover. The store
// simply skips persisting these; correctness never depends on an entry
// existing.
func goldenEncodable(res *Result) error {
	switch {
	case res == nil:
		return fmt.Errorf("offramps: golden codec: nil result")
	case res.HaltError != nil:
		return fmt.Errorf("offramps: golden codec: result carries a halt error")
	case res.Aborted || res.AbortedAt != 0 || res.TripReason != "":
		return fmt.Errorf("offramps: golden codec: result carries an abort")
	case len(res.Detections) > 0 || res.TrojanLikely:
		return fmt.Errorf("offramps: golden codec: result carries detector reports")
	}
	return nil
}

// tag values for the three capture slots (primary, arduino, ramps).
// Aliasing matters: under a single-side tap the per-side view IS the
// primary recording (same pointer), and a decoded result must preserve
// that identity for bit-exactness.
const (
	slotNil          = 0 // this side is not tapped
	slotInline       = 1 // payload follows
	slotAliasPrimary = 2 // same object as the primary slot
)

// encodeGoldenResult serializes a golden result for the persistent
// store. All integers are little-endian and fixed-width; floats travel
// as IEEE-754 bits, so every value round-trips exactly.
func encodeGoldenResult(res *Result) ([]byte, error) {
	if err := goldenEncodable(res); err != nil {
		return nil, err
	}
	b := make([]byte, 0, 4096)
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	i64 := func(v int64) { u64(uint64(v)) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	boolByte := func(v bool) {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}

	u32(GoldenCodecVersion)
	boolByte(res.Completed)
	i64(int64(res.Duration))

	f64(res.Quality.TotalFilament)
	i64(int64(res.Quality.LayerCount))
	f64(res.Quality.MaxLayerShift)
	f64(res.Quality.MaxZGap)
	f64(res.Quality.FootprintW)
	f64(res.Quality.FootprintD)

	f64(res.PeakHotendTemp)
	f64(res.PeakBedTemp)
	boolByte(res.HotendExceededSafe)
	f64(res.FanDutyAtEnd)
	f64(res.PeakFanDuty)

	b = append(b, byte(len(res.StepsLost)))
	for _, a := range signal.Axes {
		if v, ok := res.StepsLost[a]; ok {
			b = append(b, byte(a))
			u64(v)
		}
	}

	if res.Part == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		f64(res.Part.LayerQuantum())
		deps := res.Part.Deposits()
		u64(uint64(len(deps)))
		for _, d := range deps {
			f64(d.X)
			f64(d.Y)
			f64(d.Z)
			f64(d.Filament)
		}
	}

	encRec := func(rec, primary *capture.Recording) {
		switch {
		case rec == nil:
			b = append(b, slotNil)
		case rec == primary:
			b = append(b, slotAliasPrimary)
		default:
			b = append(b, slotInline)
			i64(int64(rec.Period))
			i64(int64(rec.StartedAt))
			u64(uint64(len(rec.Transactions)))
			for _, t := range rec.Transactions {
				u32(t.Index)
				u32(uint32(t.X))
				u32(uint32(t.Y))
				u32(uint32(t.Z))
				u32(uint32(t.E))
			}
		}
	}
	encRec(res.Recording, nil) // the primary slot is always inline (or nil)
	encRec(res.ArduinoRecording, res.Recording)
	encRec(res.RAMPSRecording, res.Recording)

	encFp := func(fp, primary *capture.Fingerprint) {
		switch {
		case fp == nil:
			b = append(b, slotNil)
		case fp == primary:
			b = append(b, slotAliasPrimary)
		default:
			b = append(b, slotInline)
			i64(int64(fp.Windows))
			i64(int64(fp.Period))
			i64(int64(fp.StartedAt))
			u64(fp.Digest)
			for _, a := range fp.Axes {
				i64(a.Final)
				i64(a.Min)
				i64(a.Max)
				i64(a.TotalAbsDelta)
			}
		}
	}
	encFp(res.Fingerprint, nil)
	encFp(res.ArduinoFingerprint, res.Fingerprint)
	encFp(res.RAMPSFingerprint, res.Fingerprint)

	return b, nil
}

// goldenDecoder is a bounds-checked little-endian reader; any overrun
// poisons it, and the caller reports one error at the end. That keeps
// the decode loop linear instead of nested error plumbing.
type goldenDecoder struct {
	b   []byte
	off int
	bad bool
}

func (d *goldenDecoder) take(n int) []byte {
	if d.bad || d.off+n > len(d.b) {
		d.bad = true
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *goldenDecoder) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (d *goldenDecoder) i64() int64     { return int64(d.u64()) }
func (d *goldenDecoder) f64() float64   { return math.Float64frombits(d.u64()) }
func (d *goldenDecoder) boolByte() bool { return d.byte() != 0 }

func (d *goldenDecoder) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *goldenDecoder) byte() byte {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

// maxGoldenSlice bounds decoded element counts before allocation, so a
// corrupt length prefix cannot ask for gigabytes. Real captures are
// thousands of windows; deposits a few hundred thousand.
const maxGoldenSlice = 1 << 26

func (d *goldenDecoder) count() int {
	n := d.u64()
	if n > maxGoldenSlice {
		d.bad = true
		return 0
	}
	return int(n)
}

// decodeGoldenResult inverts encodeGoldenResult. Any malformation —
// truncation, a foreign codec version, an impossible count — is an
// error; the cache maps it to a miss and re-simulates.
func decodeGoldenResult(payload []byte) (*Result, error) {
	d := &goldenDecoder{b: payload}
	if v := d.u32(); v != GoldenCodecVersion {
		return nil, fmt.Errorf("offramps: golden codec: version %d, want %d", v, GoldenCodecVersion)
	}
	res := &Result{}
	res.Completed = d.boolByte()
	res.Duration = sim.Time(d.i64())

	res.Quality.TotalFilament = d.f64()
	res.Quality.LayerCount = int(d.i64())
	res.Quality.MaxLayerShift = d.f64()
	res.Quality.MaxZGap = d.f64()
	res.Quality.FootprintW = d.f64()
	res.Quality.FootprintD = d.f64()

	res.PeakHotendTemp = d.f64()
	res.PeakBedTemp = d.f64()
	res.HotendExceededSafe = d.boolByte()
	res.FanDutyAtEnd = d.f64()
	res.PeakFanDuty = d.f64()

	if n := int(d.byte()); n > 0 {
		if n > len(signal.Axes) {
			return nil, fmt.Errorf("offramps: golden codec: %d step-loss axes", n)
		}
		res.StepsLost = make(map[signal.Axis]uint64, n)
		for i := 0; i < n; i++ {
			axis := signal.Axis(d.byte())
			res.StepsLost[axis] = d.u64()
		}
	}

	if d.boolByte() {
		part := printer.NewPart(d.f64())
		n := d.count()
		for i := 0; i < n && !d.bad; i++ {
			part.Add(printer.Deposit{X: d.f64(), Y: d.f64(), Z: d.f64(), Filament: d.f64()})
		}
		res.Part = part
	}

	decRec := func(primary *capture.Recording) (*capture.Recording, error) {
		switch tag := d.byte(); tag {
		case slotNil:
			return nil, nil
		case slotAliasPrimary:
			if primary == nil {
				return nil, fmt.Errorf("offramps: golden codec: alias to a nil primary recording")
			}
			return primary, nil
		case slotInline:
			rec := &capture.Recording{
				Period:    sim.Time(d.i64()),
				StartedAt: sim.Time(d.i64()),
			}
			n := d.count()
			if !d.bad && n > 0 {
				rec.Transactions = make([]capture.Transaction, n)
				for i := range rec.Transactions {
					rec.Transactions[i] = capture.Transaction{
						Index: d.u32(),
						X:     int32(d.u32()),
						Y:     int32(d.u32()),
						Z:     int32(d.u32()),
						E:     int32(d.u32()),
					}
				}
			}
			return rec, nil
		default:
			return nil, fmt.Errorf("offramps: golden codec: recording tag %d", tag)
		}
	}
	var err error
	if res.Recording, err = decRec(nil); err != nil {
		return nil, err
	}
	if res.ArduinoRecording, err = decRec(res.Recording); err != nil {
		return nil, err
	}
	if res.RAMPSRecording, err = decRec(res.Recording); err != nil {
		return nil, err
	}

	decFp := func(primary *capture.Fingerprint) (*capture.Fingerprint, error) {
		switch tag := d.byte(); tag {
		case slotNil:
			return nil, nil
		case slotAliasPrimary:
			if primary == nil {
				return nil, fmt.Errorf("offramps: golden codec: alias to a nil primary fingerprint")
			}
			return primary, nil
		case slotInline:
			fp := &capture.Fingerprint{
				Windows:   int(d.i64()),
				Period:    sim.Time(d.i64()),
				StartedAt: sim.Time(d.i64()),
				Digest:    d.u64(),
			}
			for i := range fp.Axes {
				fp.Axes[i] = capture.AxisSummary{
					Final:         d.i64(),
					Min:           d.i64(),
					Max:           d.i64(),
					TotalAbsDelta: d.i64(),
				}
			}
			fp.Rehydrate()
			return fp, nil
		default:
			return nil, fmt.Errorf("offramps: golden codec: fingerprint tag %d", tag)
		}
	}
	if res.Fingerprint, err = decFp(nil); err != nil {
		return nil, err
	}
	if res.ArduinoFingerprint, err = decFp(res.Fingerprint); err != nil {
		return nil, err
	}
	if res.RAMPSFingerprint, err = decFp(res.Fingerprint); err != nil {
		return nil, err
	}

	if d.bad {
		return nil, fmt.Errorf("offramps: golden codec: truncated payload")
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("offramps: golden codec: %d trailing bytes", len(payload)-d.off)
	}
	return res, nil
}
