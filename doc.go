// Package offramps is a full-system software reproduction of "OFFRAMPS:
// An FPGA-based Intermediary for Analysis and Modification of Additive
// Manufacturing Control Systems" (DSN 2024).
//
// The physical OFFRAMPS is a PCB that places an FPGA as a machine-in-the-
// middle between an Arduino Mega running Marlin and a RAMPS 1.4 printer
// control board. This package assembles the simulated equivalent:
//
//	slicer ─► G-code ─► firmware twin ─► Arduino-side bus
//	                                         │
//	                                   OFFRAMPS board (FPGA MITM)
//	                                   · bypass / trojan / capture
//	                                         │
//	                                   RAMPS-side bus ─► drivers,
//	                                   heaters, endstops ─► printer plant
//	                                   (kinematics + thermodynamics +
//	                                    deposited part)
//
// A Testbed wires all of it together; Run executes a print end-to-end and
// returns the capture, the printed part's quality metrics, and the
// machine's thermal outcome. Run optionally attaches live streaming
// detectors (WithDetector) that can abort the print the moment a trojan
// is suspected. Campaign fans many (program × trojan × seed × detector)
// scenarios across a worker pool with deterministic per-scenario seeding.
//
// Scenarios are data: a serializable ScenarioSpec (program ref, trojan
// spec, detector spec, tap placement, seed policy, budget) compiles into
// a runnable Scenario through the trojan/detector registries, and a
// SuiteSpec file bundles scenarios with post-run golden comparisons
// (cmd/suite executes them). The experiment entry points (TableI,
// TableII, Figure4, Overhead, Drift, TapSides) all compile themselves
// from specs to regenerate every table and figure in the paper's
// evaluation. The board's capture tap point is itself configuration
// (WithTapSide): the paper's Arduino-side tap, a RAMPS-side tap that can
// see board-injected trojans (§V-D), or both. Live detection is tap-
// addressable on top of that: WithDetectorAt binds a detector to a
// chosen tap, and the dual binding feeds attestation-style detectors
// synchronized pairs from both sides, so a single dual-tap print detects
// board-resident trojans with no golden reference (SelfAttest).
//
// Everything above the testbed is built for scale on one invariant:
// simulation is deterministic, so a scenario's result — and its
// serialized report row — is a pure function of its spec and seed.
// GridSpec expands compact axis sweeps into validated suites;
// FNV-1a-per-name sharding (suite -shard/-merge) and the distributed
// farm (internal/farm: HTTP lease queue, resumable JSONL journal,
// StitchReport) both reassemble reports byte-identical to an
// uninterrupted single-process run. Goldens are memoized in a layered
// repository — in-process LRU (GoldenCache) over a persistent
// content-addressed disk store (internal/goldenstore) — and huge grids
// run under the progressive scheduler (internal/sched, surfaced as
// RunSuiteProgressive and `suite -progressive`): coverage first, then
// refinement around detection-boundary cells, with retired scenarios
// reported as synthesized "skipped (...)" rows and every executed row
// still byte-identical to the full run's.
//
// See README.md for a tour of the commands and DESIGN.md for the
// architecture, section by section.
package offramps
