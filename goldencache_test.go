package offramps

import (
	"context"
	"testing"

	"offramps/internal/fpga"
	"offramps/internal/sim"
	"offramps/internal/trojan"
)

// TestGoldenCacheBitIdentical verifies the golden cache's core promise: a
// cache hit returns a result bit-identical to a fresh simulation of the
// same (program, seed, budget), and the golden is simulated exactly once.
func TestGoldenCacheBitIdentical(t *testing.T) {
	prog := mustTestPart(t)
	scens := []Scenario{{Name: "golden", Program: prog, Seed: 5}}

	fresh, err := Campaign{Workers: 1}.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstScenarioErr(fresh); err != nil {
		t.Fatal(err)
	}

	cache := NewGoldenCache()
	cached1, err := Campaign{Workers: 1, Cache: cache}.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	cached2, err := Campaign{Workers: 1, Cache: cache}.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstScenarioErr(cached2); err != nil {
		t.Fatal(err)
	}

	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if cached1[0].Result != cached2[0].Result {
		t.Error("cache hit did not reuse the memoized result")
	}

	// Bit-identical against the fresh, uncached run.
	a, b := fresh[0].Result, cached2[0].Result
	if a.Duration != b.Duration || a.Quality != b.Quality {
		t.Errorf("cached golden differs from fresh: duration %v vs %v, quality %v vs %v",
			a.Duration, b.Duration, a.Quality, b.Quality)
	}
	if a.Recording.Len() != b.Recording.Len() {
		t.Fatalf("capture lengths differ: %d vs %d", a.Recording.Len(), b.Recording.Len())
	}
	for i := range a.Recording.Transactions {
		if a.Recording.Transactions[i] != b.Recording.Transactions[i] {
			t.Fatalf("cached transaction %d differs from fresh run", i)
		}
	}
}

// TestGoldenCacheKeySeparation verifies distinct seeds, programs, and
// budgets occupy distinct entries (content addressing, not name-based).
func TestGoldenCacheKeySeparation(t *testing.T) {
	prog := mustTestPart(t)
	flow, err := TestPartWithFlow(1.1)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewGoldenCache()
	c := Campaign{Workers: 2, Cache: cache}
	scens := []Scenario{
		{Name: "a", Program: prog, Seed: 1},
		{Name: "b", Program: prog, Seed: 2},       // same program, new seed
		{Name: "c", Program: flow, Seed: 1},       // new program, same seed
		{Name: "a-again", Program: prog, Seed: 1}, // duplicate of a
	}
	results, err := c.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstScenarioErr(results); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 3 {
		t.Errorf("cache holds %d entries, want 3 (a, b, c)", cache.Len())
	}
	if results[0].Result != results[3].Result {
		t.Error("duplicate golden scenario did not share the memoized result")
	}
	if results[0].Result.Recording.Len() == 0 {
		t.Error("cached golden has empty capture")
	}
}

// TestGoldenCacheLimitEvictsLRU exercises the bounded cache directly:
// entries beyond the cap evict least-recently-used, Bytes tracks the
// retained estimate, and an evicted key recomputes on the next ask.
func TestGoldenCacheLimitEvictsLRU(t *testing.T) {
	gc := NewGoldenCacheWithLimit(2)
	computes := 0
	fresh := func() (*Result, error) {
		computes++
		return &Result{}, nil
	}
	key := func(b byte) goldenKey {
		return goldenKey{program: [32]byte{b}}
	}
	for _, b := range []byte{1, 2} {
		if _, err := gc.run(key(b), fresh); err != nil {
			t.Fatal(err)
		}
	}
	if gc.Len() != 2 || computes != 2 {
		t.Fatalf("len=%d computes=%d, want 2/2", gc.Len(), computes)
	}
	if gc.Bytes() <= 0 {
		t.Error("no bytes accounted for cached results")
	}
	perEntry := gc.Bytes() / 2

	// Touch 1, insert 3: 2 is now the LRU and must go.
	if _, err := gc.run(key(1), fresh); err != nil {
		t.Fatal(err)
	}
	if _, err := gc.run(key(3), fresh); err != nil {
		t.Fatal(err)
	}
	if gc.Len() != 2 {
		t.Fatalf("len=%d after eviction, want 2", gc.Len())
	}
	if gc.Bytes() != 2*perEntry {
		t.Errorf("bytes=%d after eviction, want %d", gc.Bytes(), 2*perEntry)
	}

	// 1 survived (hit, no recompute); 2 was evicted (recompute).
	before := computes
	if _, err := gc.run(key(1), fresh); err != nil {
		t.Fatal(err)
	}
	if computes != before {
		t.Error("surviving entry recomputed")
	}
	if _, err := gc.run(key(2), fresh); err != nil {
		t.Fatal(err)
	}
	if computes != before+1 {
		t.Error("evicted entry not recomputed")
	}
}

// TestGoldenCacheModeSeparation: full-trace and fingerprint-mode results
// are different shapes; the key must keep them apart.
func TestGoldenCacheModeSeparation(t *testing.T) {
	gc := NewGoldenCache()
	fresh := func() (*Result, error) { return &Result{}, nil }
	k := goldenKey{seed: 1}
	kf := k
	kf.mode = CaptureFingerprint
	if _, err := gc.run(k, fresh); err != nil {
		t.Fatal(err)
	}
	if _, err := gc.run(kf, fresh); err != nil {
		t.Fatal(err)
	}
	if gc.Len() != 2 {
		t.Fatalf("modes share a cache entry: len=%d", gc.Len())
	}
}

// TestGoldenCacheSkipsNonGoldenScenarios verifies scenarios carrying
// trojans or opaque options bypass the cache entirely.
func TestGoldenCacheSkipsNonGoldenScenarios(t *testing.T) {
	prog := mustTestPart(t)
	cache := NewGoldenCache()
	scens := []Scenario{
		{Name: "t2", Program: prog, Seed: 1, Trojan: func(uint64) fpga.Trojan {
			return trojan.NewT2ExtrusionReduction(trojan.T2Params{KeepRatio: 0.5})
		}},
		{Name: "opts", Program: prog, Seed: 1, Options: []Option{WithSettle(3 * sim.Second)}},
	}
	results, err := Campaign{Workers: 1, Cache: cache}.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstScenarioErr(results); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Errorf("non-golden scenarios were cached: %d entries", cache.Len())
	}
	if hits, misses := cache.Stats(); hits != 0 || misses != 0 {
		t.Errorf("cache consulted for non-golden scenarios: %d hits / %d misses", hits, misses)
	}
}
