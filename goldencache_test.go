package offramps

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"offramps/internal/fpga"
	"offramps/internal/goldenstore"
	"offramps/internal/sim"
	"offramps/internal/trojan"
)

// TestGoldenCacheBitIdentical verifies the golden cache's core promise: a
// cache hit returns a result bit-identical to a fresh simulation of the
// same (program, seed, budget), and the golden is simulated exactly once.
func TestGoldenCacheBitIdentical(t *testing.T) {
	prog := mustTestPart(t)
	scens := []Scenario{{Name: "golden", Program: prog, Seed: 5}}

	fresh, err := Campaign{Workers: 1}.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstScenarioErr(fresh); err != nil {
		t.Fatal(err)
	}

	cache := NewGoldenCache()
	cached1, err := Campaign{Workers: 1, Cache: cache}.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	cached2, err := Campaign{Workers: 1, Cache: cache}.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstScenarioErr(cached2); err != nil {
		t.Fatal(err)
	}

	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if cached1[0].Result != cached2[0].Result {
		t.Error("cache hit did not reuse the memoized result")
	}

	// Bit-identical against the fresh, uncached run.
	a, b := fresh[0].Result, cached2[0].Result
	if a.Duration != b.Duration || a.Quality != b.Quality {
		t.Errorf("cached golden differs from fresh: duration %v vs %v, quality %v vs %v",
			a.Duration, b.Duration, a.Quality, b.Quality)
	}
	if a.Recording.Len() != b.Recording.Len() {
		t.Fatalf("capture lengths differ: %d vs %d", a.Recording.Len(), b.Recording.Len())
	}
	for i := range a.Recording.Transactions {
		if a.Recording.Transactions[i] != b.Recording.Transactions[i] {
			t.Fatalf("cached transaction %d differs from fresh run", i)
		}
	}
}

// TestGoldenCacheKeySeparation verifies distinct seeds, programs, and
// budgets occupy distinct entries (content addressing, not name-based).
func TestGoldenCacheKeySeparation(t *testing.T) {
	prog := mustTestPart(t)
	flow, err := TestPartWithFlow(1.1)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewGoldenCache()
	c := Campaign{Workers: 2, Cache: cache}
	scens := []Scenario{
		{Name: "a", Program: prog, Seed: 1},
		{Name: "b", Program: prog, Seed: 2},       // same program, new seed
		{Name: "c", Program: flow, Seed: 1},       // new program, same seed
		{Name: "a-again", Program: prog, Seed: 1}, // duplicate of a
	}
	results, err := c.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstScenarioErr(results); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 3 {
		t.Errorf("cache holds %d entries, want 3 (a, b, c)", cache.Len())
	}
	if results[0].Result != results[3].Result {
		t.Error("duplicate golden scenario did not share the memoized result")
	}
	if results[0].Result.Recording.Len() == 0 {
		t.Error("cached golden has empty capture")
	}
}

// TestGoldenCacheLimitEvictsLRU exercises the bounded cache directly:
// entries beyond the cap evict least-recently-used, Bytes tracks the
// retained estimate, and an evicted key recomputes on the next ask.
func TestGoldenCacheLimitEvictsLRU(t *testing.T) {
	gc := NewGoldenCacheWithLimit(2)
	computes := 0
	fresh := func() (*Result, error) {
		computes++
		return &Result{}, nil
	}
	key := func(b byte) goldenKey {
		return goldenKey{program: [32]byte{b}}
	}
	for _, b := range []byte{1, 2} {
		if _, err := gc.run(key(b), fresh); err != nil {
			t.Fatal(err)
		}
	}
	if gc.Len() != 2 || computes != 2 {
		t.Fatalf("len=%d computes=%d, want 2/2", gc.Len(), computes)
	}
	if gc.Bytes() <= 0 {
		t.Error("no bytes accounted for cached results")
	}
	perEntry := gc.Bytes() / 2

	// Touch 1, insert 3: 2 is now the LRU and must go.
	if _, err := gc.run(key(1), fresh); err != nil {
		t.Fatal(err)
	}
	if _, err := gc.run(key(3), fresh); err != nil {
		t.Fatal(err)
	}
	if gc.Len() != 2 {
		t.Fatalf("len=%d after eviction, want 2", gc.Len())
	}
	if gc.Bytes() != 2*perEntry {
		t.Errorf("bytes=%d after eviction, want %d", gc.Bytes(), 2*perEntry)
	}

	// 1 survived (hit, no recompute); 2 was evicted (recompute).
	before := computes
	if _, err := gc.run(key(1), fresh); err != nil {
		t.Fatal(err)
	}
	if computes != before {
		t.Error("surviving entry recomputed")
	}
	if _, err := gc.run(key(2), fresh); err != nil {
		t.Fatal(err)
	}
	if computes != before+1 {
		t.Error("evicted entry not recomputed")
	}
}

// TestGoldenCacheModeSeparation: full-trace and fingerprint-mode results
// are different shapes; the key must keep them apart.
func TestGoldenCacheModeSeparation(t *testing.T) {
	gc := NewGoldenCache()
	fresh := func() (*Result, error) { return &Result{}, nil }
	k := goldenKey{seed: 1}
	kf := k
	kf.mode = CaptureFingerprint
	if _, err := gc.run(k, fresh); err != nil {
		t.Fatal(err)
	}
	if _, err := gc.run(kf, fresh); err != nil {
		t.Fatal(err)
	}
	if gc.Len() != 2 {
		t.Fatalf("modes share a cache entry: len=%d", gc.Len())
	}
}

// TestGoldenCacheSkipsNonGoldenScenarios verifies scenarios carrying
// trojans or opaque options bypass the cache entirely.
func TestGoldenCacheSkipsNonGoldenScenarios(t *testing.T) {
	prog := mustTestPart(t)
	cache := NewGoldenCache()
	scens := []Scenario{
		{Name: "t2", Program: prog, Seed: 1, Trojan: func(uint64) fpga.Trojan {
			return trojan.NewT2ExtrusionReduction(trojan.T2Params{KeepRatio: 0.5})
		}},
		{Name: "opts", Program: prog, Seed: 1, Options: []Option{WithSettle(3 * sim.Second)}},
	}
	results, err := Campaign{Workers: 1, Cache: cache}.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstScenarioErr(results); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Errorf("non-golden scenarios were cached: %d entries", cache.Len())
	}
	if hits, misses := cache.Stats(); hits != 0 || misses != 0 {
		t.Errorf("cache consulted for non-golden scenarios: %d hits / %d misses", hits, misses)
	}
}

// TestGoldenCacheStoreCrossProcessBitIdentical is the persistent-store
// extension of TestGoldenCacheBitIdentical: a cold process populates the
// store, a "fresh process" (new cache, reopened store) serves the same
// scenario from disk with zero golden simulations, and the served result
// is indistinguishable from a fresh, uncached run.
func TestGoldenCacheStoreCrossProcessBitIdentical(t *testing.T) {
	for _, mode := range []CaptureMode{CaptureFull, CaptureFingerprint} {
		t.Run(mode.String(), func(t *testing.T) {
			prog := mustTestPart(t)
			scens := []Scenario{{Name: "golden", Program: prog, Seed: 5}}
			dir := t.TempDir()

			fresh, err := Campaign{Workers: 1, CaptureMode: mode}.Run(context.Background(), scens)
			if err != nil {
				t.Fatal(err)
			}
			if err := firstScenarioErr(fresh); err != nil {
				t.Fatal(err)
			}

			// Cold process: memory miss, store miss, one simulation.
			store1, err := goldenstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			cold := NewGoldenCache()
			cold.AttachStore(store1)
			coldRes, err := Campaign{Workers: 1, CaptureMode: mode, Cache: cold}.Run(context.Background(), scens)
			if err != nil {
				t.Fatal(err)
			}
			if err := firstScenarioErr(coldRes); err != nil {
				t.Fatal(err)
			}
			if sh, sm := cold.StoreStats(); sh != 0 || sm != 1 {
				t.Fatalf("cold store stats = %d/%d, want 0 hits / 1 miss", sh, sm)
			}
			if cold.Sims() != 1 {
				t.Fatalf("cold sims = %d, want 1", cold.Sims())
			}

			// Warm "process": a brand-new cache over a reopened store.
			store2, err := goldenstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			warm := NewGoldenCache()
			warm.AttachStore(store2)
			warmRes, err := Campaign{Workers: 1, CaptureMode: mode, Cache: warm}.Run(context.Background(), scens)
			if err != nil {
				t.Fatal(err)
			}
			if err := firstScenarioErr(warmRes); err != nil {
				t.Fatal(err)
			}
			if warm.Sims() != 0 {
				t.Errorf("warm process simulated %d goldens, want 0", warm.Sims())
			}
			if sh, sm := warm.StoreStats(); sh != 1 || sm != 0 {
				t.Errorf("warm store stats = %d/%d, want 1 hit / 0 misses", sh, sm)
			}
			if !reflect.DeepEqual(fresh[0].Result, warmRes[0].Result) {
				t.Error("store-served golden differs from a fresh, uncached run")
			}
			if !reflect.DeepEqual(coldRes[0].Result, warmRes[0].Result) {
				t.Error("store-served golden differs from the run that populated it")
			}
		})
	}
}

// TestGoldenCacheStoreCorruptFallsBackToSim: on-disk corruption of every
// persisted entry degrades to re-simulation — same bytes out, no error.
func TestGoldenCacheStoreCorruptFallsBackToSim(t *testing.T) {
	prog := mustTestPart(t)
	scens := []Scenario{{Name: "golden", Program: prog, Seed: 5}}
	dir := t.TempDir()

	store1, err := goldenstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewGoldenCache()
	cold.AttachStore(store1)
	coldRes, err := Campaign{Workers: 1, Cache: cold}.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstScenarioErr(coldRes); err != nil {
		t.Fatal(err)
	}

	// Trash every persisted entry in place.
	entries, err := filepath.Glob(filepath.Join(dir, "g*", "*.golden"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no persisted entries to corrupt (%v)", err)
	}
	for _, path := range entries {
		if err := os.WriteFile(path, []byte("rotten"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	store2, err := goldenstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewGoldenCache()
	warm.AttachStore(store2)
	warmRes, err := Campaign{Workers: 1, Cache: warm}.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstScenarioErr(warmRes); err != nil {
		t.Fatal(err)
	}
	if warm.Sims() != 1 {
		t.Errorf("corrupt store did not fall back to simulation: sims = %d", warm.Sims())
	}
	if !reflect.DeepEqual(coldRes[0].Result, warmRes[0].Result) {
		t.Error("re-simulated result differs from the original")
	}
	// The fallback path healed the store: a third process hits clean.
	store3, err := goldenstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	healed := NewGoldenCache()
	healed.AttachStore(store3)
	if _, err := (Campaign{Workers: 1, Cache: healed}).Run(context.Background(), scens); err != nil {
		t.Fatal(err)
	}
	if healed.Sims() != 0 {
		t.Errorf("healed store still simulating: sims = %d", healed.Sims())
	}
}

// TestGoldenCacheFailedOwnerWaitersRetry is the joined-waiter bugfix
// test: when the first caller's computation fails, callers that joined
// it must re-attempt the key themselves rather than inherit the owner's
// error — and a join served no result must not count as a hit.
func TestGoldenCacheFailedOwnerWaitersRetry(t *testing.T) {
	gc := NewGoldenCache()
	key := goldenKey{seed: 42}
	ownerIn := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int32
	fresh := func() (*Result, error) {
		if calls.Add(1) == 1 {
			close(ownerIn)
			<-release
			return nil, errors.New("transient owner failure")
		}
		return &Result{Completed: true}, nil
	}

	ownerErr := make(chan error, 1)
	go func() {
		_, err := gc.run(key, fresh)
		ownerErr <- err
	}()
	<-ownerIn

	// Waiters join the in-flight (doomed) computation.
	const waiters = 4
	var wg sync.WaitGroup
	type outcome struct {
		res *Result
		err error
	}
	outcomes := make(chan outcome, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := gc.run(key, fresh)
			outcomes <- outcome{res, err}
		}()
	}
	close(release)
	wg.Wait()
	close(outcomes)

	if err := <-ownerErr; err == nil {
		t.Error("owner's own failure was swallowed")
	}
	for o := range outcomes {
		if o.err != nil {
			t.Errorf("waiter inherited the owner's error: %v", o.err)
		} else if o.res == nil || !o.res.Completed {
			t.Errorf("waiter served a wrong result: %+v", o.res)
		}
	}
	if gc.Len() != 1 {
		t.Errorf("cache len = %d after retry, want 1", gc.Len())
	}
	// Hits only for joins actually served a settled result; the failed
	// round contributes misses (owner + re-attempting waiters), never hits.
	hits, misses := gc.Stats()
	if hits+misses != waiters+1 {
		t.Errorf("stats = %d hits / %d misses, want %d total", hits, misses, waiters+1)
	}
	if misses < 2 {
		t.Errorf("misses = %d, want >= 2 (failed owner + retry owner)", misses)
	}
	if int(calls.Load()) < 2 {
		t.Errorf("fresh called %d times, want >= 2", calls.Load())
	}
	// The settled entry now serves hits.
	before := calls.Load()
	if res, err := gc.run(key, fresh); err != nil || !res.Completed {
		t.Fatalf("settled entry not served: %v, %v", res, err)
	}
	if calls.Load() != before {
		t.Error("settled entry recomputed")
	}
}

// TestGoldenCacheEvictionSparesInFlight: an entry still computing is
// never evicted, no matter how much settled traffic churns past it.
func TestGoldenCacheEvictionSparesInFlight(t *testing.T) {
	gc := NewGoldenCacheWithLimit(1)
	key := func(b byte) goldenKey { return goldenKey{program: [32]byte{b}} }

	slowIn := make(chan struct{})
	release := make(chan struct{})
	var slowCalls atomic.Int32
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		_, err := gc.run(key(0), func() (*Result, error) {
			slowCalls.Add(1)
			if slowCalls.Load() == 1 {
				close(slowIn)
				<-release
			}
			return &Result{}, nil
		})
		if err != nil {
			t.Errorf("slow owner failed: %v", err)
		}
	}()
	<-slowIn

	// Churn settled entries past the cap while key 0 is in flight.
	for b := byte(1); b <= 5; b++ {
		if _, err := gc.run(key(b), func() (*Result, error) { return &Result{}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	<-slowDone

	if gc.Bytes() < 0 {
		t.Errorf("bytes went negative: %d", gc.Bytes())
	}
	// Key 0 must have survived the churn: asking again is a hit.
	if _, err := gc.run(key(0), func() (*Result, error) {
		t.Error("in-flight entry was evicted and recomputed")
		return &Result{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if slowCalls.Load() != 1 {
		t.Errorf("slow key computed %d times, want 1", slowCalls.Load())
	}
}

// TestGoldenCacheChurnInvariants drives a bounded cache through
// concurrent hits, misses, failures, and evictions (run under -race in
// CI) and checks the accounting invariants afterwards: bytes never
// negative, length within the cap once quiescent.
func TestGoldenCacheChurnInvariants(t *testing.T) {
	gc := NewGoldenCacheWithLimit(2)
	key := func(b byte) goldenKey { return goldenKey{program: [32]byte{b}} }
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := byte((g + i) % 8)
				fail := (g+i)%5 == 0
				res, err := gc.run(key(b), func() (*Result, error) {
					if fail {
						return nil, errors.New("synthetic failure")
					}
					return &Result{}, nil
				})
				// A caller that owns a failing compute gets the error;
				// everyone served must get a result.
				if err == nil && res == nil {
					t.Error("nil result without error")
					return
				}
				if gc.Bytes() < 0 {
					t.Errorf("bytes negative mid-churn: %d", gc.Bytes())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if gc.Bytes() < 0 {
		t.Errorf("bytes negative after churn: %d", gc.Bytes())
	}
	if gc.Len() > 2 {
		t.Errorf("len = %d after churn with limit 2", gc.Len())
	}
	hits, misses := gc.Stats()
	if hits+misses == 0 {
		t.Error("no traffic recorded")
	}
}
