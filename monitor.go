package offramps

import (
	"fmt"

	"offramps/internal/capture"
	"offramps/internal/detect"
	"offramps/internal/gcode"
	"offramps/internal/signal"
	"offramps/internal/sim"
)

// MonitoredResult extends Result with the live detector's outcome.
type MonitoredResult struct {
	Result
	// Aborted is true when the monitor tripped and the session halted the
	// print early ("enabling a user to halt a print as soon as a Trojan
	// is suspected", paper §V-C).
	Aborted bool
	// AbortedAt is the simulation time of the abort (zero otherwise).
	AbortedAt sim.Time
	// Trip is the first out-of-margin observation (nil if never tripped).
	Trip *detect.Mismatch
	// TrojanLikely is the overall verdict after the final-count check
	// (or immediately upon abort).
	TrojanLikely bool
}

// RunMonitored executes the program while feeding the OFFRAMPS capture
// into a streaming detector in real time. When the detector trips, the
// simulation stops immediately — the print is aborted mid-job, saving the
// machine time and material the paper's continuous-monitoring deployment
// aims to save (§V-A).
//
// The testbed must have its MITM path enabled (captures come from the
// board). golden is the known-good capture of the same job.
func (tb *Testbed) RunMonitored(prog gcode.Program, limit sim.Time, golden *capture.Recording, cfg detect.Config) (*MonitoredResult, error) {
	if tb.Board == nil {
		return nil, fmt.Errorf("offramps: RunMonitored requires the MITM path")
	}
	if limit <= 0 {
		return nil, fmt.Errorf("offramps: RunMonitored limit must be positive")
	}
	monitor, err := detect.NewMonitor(golden, cfg)
	if err != nil {
		return nil, fmt.Errorf("offramps: %w", err)
	}

	tb.Firmware.Load(prog)
	if err := tb.Firmware.Start(); err != nil {
		return nil, fmt.Errorf("offramps: %w", err)
	}

	out := &MonitoredResult{}
	deadline := tb.Engine.Now() + limit
	fed := 0
	// Step the simulation in capture-window increments so the monitor
	// sees each transaction about when the hardware would emit it.
	step := tb.Board.Config().ExportPeriod
	for !tb.Firmware.Done() && !out.Aborted {
		if tb.Engine.Now() >= deadline {
			return nil, &ErrTimeout{Limit: limit}
		}
		if err := tb.Engine.Run(tb.Engine.Now() + step); err != nil {
			return nil, fmt.Errorf("offramps: simulation: %w", err)
		}
		rec := tb.Board.Recording()
		for ; fed < rec.Len(); fed++ {
			tripped, err := monitor.Observe(rec.Transactions[fed])
			if err != nil {
				return nil, fmt.Errorf("offramps: monitor: %w", err)
			}
			if tripped {
				out.Aborted = true
				out.AbortedAt = tb.Engine.Now()
				out.Trip = monitor.TripMismatch()
				out.TrojanLikely = true
				break
			}
		}
	}

	if !out.Aborted {
		// Normal completion: settle, then run the final-count check.
		if err := tb.Engine.Run(tb.Engine.Now() + tb.opts.settle); err != nil {
			return nil, fmt.Errorf("offramps: settling: %w", err)
		}
		rec := tb.Board.Recording()
		for ; fed < rec.Len(); fed++ {
			tripped, err := monitor.Observe(rec.Transactions[fed])
			if err != nil {
				return nil, fmt.Errorf("offramps: monitor: %w", err)
			}
			if tripped {
				out.Aborted = false // too late to abort; just flag
				out.Trip = monitor.TripMismatch()
			}
		}
		if final, ok := rec.Final(); ok {
			likely, _ := monitor.Finish(final)
			out.TrojanLikely = likely
		}
	}
	tb.Board.StopCapture()

	out.Result = Result{
		Completed:          !out.Aborted && tb.Firmware.Err() == nil,
		HaltError:          tb.Firmware.Err(),
		Duration:           tb.Engine.Now(),
		Recording:          tb.Board.Recording(),
		Quality:            tb.Plant.Part().AssessQuality(1.0),
		Part:               tb.Plant.Part(),
		PeakHotendTemp:     tb.Plant.PeakHotendTemp(),
		PeakBedTemp:        tb.Plant.PeakBedTemp(),
		HotendExceededSafe: tb.Plant.HotendExceededSafe(),
		FanDutyAtEnd:       tb.Plant.FanDuty(),
		PeakFanDuty:        tb.Plant.PeakFanDuty(),
		StepsLost:          make(map[signal.Axis]uint64, 4),
	}
	for _, a := range signal.Axes {
		out.Result.StepsLost[a] = tb.Plant.Driver(a).StepsLost()
	}
	return out, nil
}
