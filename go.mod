module offramps

go 1.24
