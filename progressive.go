package offramps

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"offramps/internal/capture"
	"offramps/internal/sched"
)

// This file runs a grid suite progressively: internal/sched decides
// which scenarios run (coverage first, refinement around detection
// boundaries, early stop for unanimous cells) and RunSuiteProgressive
// executes each round as an ordinary campaign batch, feeding verdicts
// back. Scenarios the scheduler retires become synthesized skip rows —
// ScenarioResult errors with the canonical "skipped (...)" text — so
// the report, the JSONL streams, and StitchReport stay complete. Every
// executed scenario's row is byte-identical to the full run's row for
// the same name: execution inputs are per-scenario and never depend on
// which other scenarios ran.

// skippedResultPrefix marks a synthesized skip row's error text. The
// prefix — not a sentinel error type — is the contract, because skip
// rows round-trip through JSONL streams and farm journals as plain
// strings.
const skippedResultPrefix = "skipped ("

// SkipMessage renders the canonical error text of a synthesized skip
// row ("skipped (early-stop, 2/2 unanimous)").
func SkipMessage(reason string) string { return skippedResultPrefix + reason + ")" }

// IsSkippedResult reports whether a scenario or comparison error text
// marks a progressive-sweep skip row rather than a real failure, so
// exit-code checks can pass over skips while still failing on errors.
func IsSkippedResult(msg string) bool { return strings.HasPrefix(msg, skippedResultPrefix) }

// SweepStats summarizes a finished progressive sweep.
type SweepStats struct {
	sched.Stats
}

// Summary renders the stats as one progress line.
func (st SweepStats) Summary() string {
	return fmt.Sprintf("progressive: %d/%d cells covered, %d boundary cells, %d scenarios executed, %d skipped of %d (%d rounds)",
		st.Covered, st.Cells, st.Boundary, st.Executed, st.Skipped, st.Total, st.Rounds)
}

// ValidateProgressive checks that the suite is safely skippable under
// the layout: every golden reference — a detector's golden scenario or
// a comparison's golden side — must be one of the layout's extras.
// Extras always execute (round 1, never retired); a cell seed used as a
// golden could be skipped, and a compare or detector referencing a skip
// row would then diverge from the full run instead of reproducing it.
func ValidateProgressive(suite *SuiteSpec, layout *sched.Grid) error {
	extra := make(map[string]bool, len(layout.Extras))
	for _, name := range layout.Extras {
		extra[name] = true
	}
	for _, sc := range suite.Scenarios {
		if sc.Detector != nil && sc.Detector.Golden != "" && !extra[sc.Detector.Golden] {
			return fmt.Errorf("offramps: suite %q: progressive execution requires detector goldens to be grid extras, but %q references cell scenario %q", suite.Name, sc.Name, sc.Detector.Golden)
		}
	}
	for _, cmp := range suite.Compare {
		if !extra[cmp.Golden] {
			return fmt.Errorf("offramps: suite %q: progressive execution requires compare goldens to be grid extras, but %q vs %q compares against a cell scenario", suite.Name, cmp.Golden, cmp.Suspect)
		}
	}
	return nil
}

// progressiveVerdict derives the scheduler verdict for one executed
// scenario. The rule — and the farm coordinator's raw-row twin
// (internal/farm) — is: an error is Errored; a live detection decides
// by TrojanLikely; otherwise the scenario's first comparison whose
// golden has executed decides (memoized in cache so the final report
// reuses the same CompareResult); otherwise the result's own
// TrojanLikely flag; otherwise Unknown.
func progressiveVerdict(name string, suite *SuiteSpec, results map[string]ScenarioResult, cache map[string]CompareResult) sched.Verdict {
	res, ok := results[name]
	if !ok || res.Err != nil || res.Result == nil {
		return sched.Errored
	}
	if len(res.Result.Detections) > 0 {
		if res.Result.TrojanLikely {
			return sched.Trojan
		}
		return sched.Clean
	}
	for _, cmp := range suite.Compare {
		if cmp.Suspect != name {
			continue
		}
		if _, ran := results[cmp.Golden]; !ran {
			continue
		}
		key := CompareKey(cmp.Golden, cmp.GoldenTap, cmp.Suspect, cmp.SuspectTap)
		cr, ok := cache[key]
		if !ok {
			cr = runCompare(cmp, results)
			cache[key] = cr
		}
		if cr.Err != nil {
			return sched.Errored
		}
		if cr.Report.TrojanLikely {
			return sched.Trojan
		}
		return sched.Clean
	}
	if res.Result.TrojanLikely {
		return sched.Trojan
	}
	return sched.Unknown
}

// RunSuiteProgressive executes a grid suite under the progressive
// scheduler: rounds of scenarios chosen by sched run as ordinary
// campaign batches (each batch internally wave-ordered for golden
// references, exactly like RunSuite), detector verdicts feed back, and
// retired scenarios become synthesized skip rows in the report and the
// sinks. With an unlimited budget and no early stop the executed set is
// the whole suite and the report is byte-identical to RunSuite's. The
// receiver's Workers/Budget act as defaults; the suite's own values win
// when set.
func (c Campaign) RunSuiteProgressive(runCtx context.Context, suite *SuiteSpec, layout *sched.Grid, cfg sched.Config) (*SuiteReport, SweepStats, error) {
	if err := suite.Validate(); err != nil {
		return nil, SweepStats{}, err
	}
	if err := ValidateProgressive(suite, layout); err != nil {
		return nil, SweepStats{}, err
	}
	sch, err := sched.New(layout, cfg)
	if err != nil {
		return nil, SweepStats{}, err
	}
	if suite.Workers != 0 {
		c.Workers = suite.Workers
	}
	if suite.Budget != 0 {
		c.Budget = suite.Budget
	}

	specs := make(map[string]ScenarioSpec, len(suite.Scenarios))
	for _, sc := range suite.Scenarios {
		specs[sc.Name] = sc
	}

	recordings := make(map[string]*capture.Recording)
	results := make(map[string]ScenarioResult, len(suite.Scenarios))
	compares := make(map[string]CompareResult)
	ctx := SpecContext{
		BaseSeed: suite.BaseSeed,
		Dir:      suite.dir,
		Goldens:  func(name string) *capture.Recording { return recordings[name] },
	}

	var sinkFailure error
	noteSink := func(err error) {
		if sinkFailure == nil && err != nil {
			sinkFailure = err
		}
	}
	runWave := func(specs []ScenarioSpec) error {
		res, err := c.RunSpecs(runCtx, ctx, specs)
		var se *SinkError
		if errors.As(err, &se) {
			noteSink(err)
			err = nil
		}
		for _, r := range res {
			if r.Name == "" {
				continue
			}
			results[r.Name] = r
			if r.Err == nil && r.Result != nil && r.Result.Recording != nil {
				recordings[r.Name] = r.Result.Recording
			}
		}
		return err
	}
	// Skip rows go through the campaign's sinks too, so JSONL streams
	// and journals stay complete records of the sweep.
	emitSkip := func(sk sched.Skip) {
		sc, ok := specs[sk.Name]
		if !ok {
			return
		}
		row := ScenarioResult{
			Name: sk.Name,
			Seed: sc.EffectiveSeed(suite.BaseSeed),
			Err:  errors.New(SkipMessage(sk.Reason)),
		}
		results[sk.Name] = row
		for _, s := range c.Sinks {
			if err := s.Emit(row); err != nil {
				noteSink(&SinkError{Err: err})
			}
		}
	}

	report := &SuiteReport{Suite: suite.Name, BaseSeed: suite.BaseSeed}
	assemble := func() {
		report.Results = make([]ScenarioResult, 0, len(suite.Scenarios))
		for _, sc := range suite.Scenarios {
			r, ok := results[sc.Name]
			if !ok {
				r = ScenarioResult{Name: sc.Name, Seed: sc.EffectiveSeed(suite.BaseSeed)}
			}
			report.Results = append(report.Results, r)
		}
	}
	stats := func() SweepStats { return SweepStats{Stats: sch.Stats()} }

	for {
		round, err := sch.NextRound()
		if err != nil {
			assemble()
			return report, stats(), fmt.Errorf("offramps: suite %q: %w", suite.Name, err)
		}
		// Retirements decided while dealing this round (early stop,
		// budget exhaustion) synthesize immediately, so streams carry
		// skips in decision order.
		for _, sk := range sch.TakeRetired() {
			emitSkip(sk)
		}
		if len(round) == 0 {
			break
		}

		batch := make([]ScenarioSpec, 0, len(round))
		for _, name := range round {
			sc, ok := specs[name]
			if !ok {
				assemble()
				return report, stats(), fmt.Errorf("offramps: suite %q: layout names scenario %q the suite does not have", suite.Name, name)
			}
			batch = append(batch, sc)
		}
		// Wave-order the batch for golden references, mirroring RunSuite:
		// extras referenced as goldens run in this same round (round 1)
		// or already ran in an earlier one.
		remaining := batch
		for len(remaining) > 0 {
			var wave, deferred []ScenarioSpec
			for _, sc := range remaining {
				ready := sc.Detector == nil || sc.Detector.Golden == ""
				if !ready {
					_, ready = results[sc.Detector.Golden]
				}
				if ready {
					wave = append(wave, sc)
				} else {
					deferred = append(deferred, sc)
				}
			}
			if len(wave) == 0 {
				assemble()
				return report, stats(), fmt.Errorf("offramps: suite %q: unresolvable golden references", suite.Name)
			}
			if err := runWave(wave); err != nil {
				assemble()
				return report, stats(), err
			}
			remaining = deferred
		}
		for _, name := range round {
			if err := sch.Observe(name, progressiveVerdict(name, suite, results, compares)); err != nil {
				assemble()
				return report, stats(), fmt.Errorf("offramps: suite %q: %w", suite.Name, err)
			}
		}
	}
	assemble()

	// Comparisons computed eagerly for verdicts are reused verbatim; the
	// rest (including any against skip rows, whose pick() naturally
	// yields the skip text) compute here against the final results.
	for _, cmp := range suite.Compare {
		key := CompareKey(cmp.Golden, cmp.GoldenTap, cmp.Suspect, cmp.SuspectTap)
		cr, ok := compares[key]
		if !ok {
			cr = runCompare(cmp, results)
		}
		report.Comparisons = append(report.Comparisons, cr)
	}
	return report, stats(), sinkFailure
}
