package offramps

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"offramps/internal/capture"
	"offramps/internal/detect"
	"offramps/internal/firmware"
	"offramps/internal/fpga"
	"offramps/internal/trojan"
)

// The capture-mode, shared-plan, and pooled-core fast paths all make the
// same promise: bit-identical outcomes to the naive path. These tests
// are the promise's enforcement — each one runs both paths and compares
// the observable results byte for byte.

// TestFingerprintEquivalence runs representative scenarios — a clean
// golden-free sweep, a Table II-style trojan print, and a dual-tap
// attestation run — in full and fingerprint mode across ten seeds. The
// two modes must produce identical detector verdicts, identical
// fingerprints (the streaming digest must match the one recomputed from
// the full recording), and identical report JSON.
func TestFingerprintEquivalence(t *testing.T) {
	prog := mustTestPart(t)
	ruleEngine := func(t *testing.T) RunOption {
		re, err := detect.NewRuleEngine(detect.DefaultLimits())
		if err != nil {
			t.Fatal(err)
		}
		return WithDetectorAt(BindPrimary, re, FlagOnly)
	}
	attestor := func(t *testing.T) RunOption {
		att, err := detect.NewAttestation(detect.DefaultAttestationConfig())
		if err != nil {
			t.Fatal(err)
		}
		return WithDetectorAt(BindDual, att, FlagOnly)
	}
	// opts is a factory: trojans are stateful, so each run needs its own.
	cases := []struct {
		name     string
		opts     func() []Option
		detector func(t *testing.T) RunOption
	}{
		{"clean-ruleengine", func() []Option { return nil }, ruleEngine},
		{"t2-ruleengine", func() []Option {
			return []Option{WithTrojan(trojan.NewT2ExtrusionReduction(trojan.T2Params{KeepRatio: 0.5}))}
		}, ruleEngine},
		{"dual-attestation", func() []Option { return []Option{WithTapSide(fpga.TapDual)} }, attestor},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 10; seed++ {
				run := func(mode CaptureMode) *Result {
					tb, err := NewTestbed(append([]Option{WithSeed(seed)}, tc.opts()...)...)
					if err != nil {
						t.Fatal(err)
					}
					res, err := tb.Run(context.Background(), prog, WithCaptureMode(mode), tc.detector(t))
					if err != nil {
						t.Fatalf("seed %d %v: %v", seed, mode, err)
					}
					return res
				}
				full := run(CaptureFull)
				fp := run(CaptureFingerprint)

				if full.Recording == nil || full.Recording.Len() == 0 {
					t.Fatalf("seed %d: full mode produced no recording", seed)
				}
				if fp.Recording != nil || fp.ArduinoRecording != nil || fp.RAMPSRecording != nil {
					t.Fatalf("seed %d: fingerprint mode materialized a recording", seed)
				}

				if len(full.Detections) != len(fp.Detections) {
					t.Fatalf("seed %d: detection counts differ: %d vs %d", seed, len(full.Detections), len(fp.Detections))
				}
				for i := range full.Detections {
					fj, _ := json.Marshal(full.Detections[i])
					pj, _ := json.Marshal(fp.Detections[i])
					if !bytes.Equal(fj, pj) {
						t.Errorf("seed %d detector %d: reports differ:\nfull: %s\nfp:   %s", seed, i, fj, pj)
					}
				}
				if full.TrojanLikely != fp.TrojanLikely {
					t.Errorf("seed %d: verdicts differ: full=%v fp=%v", seed, full.TrojanLikely, fp.TrojanLikely)
				}

				pairs := []struct {
					rec *capture.Recording
					fpr *capture.Fingerprint
				}{
					{full.Recording, fp.Fingerprint},
					{full.ArduinoRecording, fp.ArduinoFingerprint},
					{full.RAMPSRecording, fp.RAMPSFingerprint},
				}
				for i, p := range pairs {
					if (p.rec == nil) != (p.fpr == nil) {
						t.Fatalf("seed %d tap %d: recording/fingerprint presence mismatch", seed, i)
					}
					if p.rec == nil {
						continue
					}
					want := capture.FingerprintOf(p.rec)
					if !p.fpr.Equal(&want) {
						t.Errorf("seed %d tap %d: streamed fingerprint differs from recomputed:\nstreamed: %v\nrecorded: %v",
							seed, i, p.fpr, want)
					}
				}

				fj, err := json.Marshal(full)
				if err != nil {
					t.Fatal(err)
				}
				pj, err := json.Marshal(fp)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fj, pj) {
					t.Errorf("seed %d: report JSON differs between modes:\nfull: %s\nfp:   %s", seed, fj, pj)
				}
			}
		})
	}
}

// TestCompiledPlanIdentity: simulating from a pre-compiled move plan
// must be byte-identical to the live interpreter — same transactions,
// same report JSON.
func TestCompiledPlanIdentity(t *testing.T) {
	prog := mustTestPart(t)
	compiled, err := firmware.Compile(prog, firmware.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	run := func(extra ...RunOption) *Result {
		tb, err := NewTestbed(WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		res, err := tb.Run(context.Background(), prog, extra...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	interp := run()
	planned := run(withCompiled(compiled))

	if len(interp.Recording.Transactions) != len(planned.Recording.Transactions) {
		t.Fatalf("window counts differ: %d vs %d", interp.Recording.Len(), planned.Recording.Len())
	}
	for i := range interp.Recording.Transactions {
		if interp.Recording.Transactions[i] != planned.Recording.Transactions[i] {
			t.Fatalf("window %d differs: %+v vs %+v", i,
				interp.Recording.Transactions[i], planned.Recording.Transactions[i])
		}
	}
	ij, _ := json.Marshal(interp)
	pj, _ := json.Marshal(planned)
	if !bytes.Equal(ij, pj) {
		t.Errorf("report JSON differs between interpreter and plan:\ninterp: %s\nplan:   %s", ij, pj)
	}
}

// TestCoreReuseIdentity: a testbed built on a pooled core that already
// hosted other runs (including reclaimed buffers) must reproduce a fresh
// testbed's result byte for byte.
func TestCoreReuseIdentity(t *testing.T) {
	prog := mustTestPart(t)
	run := func(seed uint64, opts ...Option) *Result {
		tb, err := NewTestbed(append([]Option{WithSeed(seed)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tb.Run(context.Background(), prog)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fresh := run(7)

	core := NewTestbedCore()
	for _, warm := range []uint64{3, 9} {
		core.Reclaim(run(warm, WithCore(core)))
	}
	reused := run(7, WithCore(core))

	if len(fresh.Recording.Transactions) != len(reused.Recording.Transactions) {
		t.Fatalf("window counts differ: %d vs %d", fresh.Recording.Len(), reused.Recording.Len())
	}
	for i := range fresh.Recording.Transactions {
		if fresh.Recording.Transactions[i] != reused.Recording.Transactions[i] {
			t.Fatalf("window %d differs: %+v vs %+v", i,
				fresh.Recording.Transactions[i], reused.Recording.Transactions[i])
		}
	}
	fj, _ := json.Marshal(fresh)
	rj, _ := json.Marshal(reused)
	if !bytes.Equal(fj, rj) {
		t.Errorf("report JSON differs between fresh and core-reused runs:\nfresh:  %s\nreused: %s", fj, rj)
	}
}

// TestCampaignFusionEquivalence: a fingerprint-mode campaign (fused
// shared simulations, shared plans, pooled cores) must reach the same
// per-scenario verdicts as the full-mode campaign running every
// scenario solo.
func TestCampaignFusionEquivalence(t *testing.T) {
	prog := mustTestPart(t)
	var scens []Scenario
	for v := 0; v < 3; v++ {
		lim := detect.DefaultLimits()
		lim.MaxStepsPerWindow += int32(v) * 96
		for seed := uint64(1); seed <= 3; seed++ {
			scens = append(scens, Scenario{
				Name:    string(rune('a'+v)) + "-" + string(rune('0'+seed)),
				Program: prog,
				Seed:    seed,
				Detector: func() (detect.Detector, error) {
					return detect.NewRuleEngine(lim)
				},
				Policy: FlagOnly,
			})
		}
	}
	run := func(mode CaptureMode) []ScenarioResult {
		results, err := Campaign{CaptureMode: mode}.Run(context.Background(), scens)
		if err != nil {
			t.Fatal(err)
		}
		if err := firstScenarioErr(results); err != nil {
			t.Fatal(err)
		}
		return results
	}
	full := run(CaptureFull)
	fused := run(CaptureFingerprint)
	for i := range scens {
		f, u := full[i], fused[i]
		if f.Name != u.Name || f.Seed != u.Seed {
			t.Fatalf("scenario %d: row mismatch: %q/%d vs %q/%d", i, f.Name, f.Seed, u.Name, u.Seed)
		}
		if f.Result.TrojanLikely != u.Result.TrojanLikely {
			t.Errorf("scenario %q: verdicts differ: full=%v fused=%v", f.Name, f.Result.TrojanLikely, u.Result.TrojanLikely)
		}
		fj, _ := json.Marshal(f.Result.Detections)
		uj, _ := json.Marshal(u.Result.Detections)
		if !bytes.Equal(fj, uj) {
			t.Errorf("scenario %q: detector reports differ:\nfull:  %s\nfused: %s", f.Name, fj, uj)
		}
	}
}
